package viz

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"lbsq/internal/geom"
)

func render(t *testing.T, s *Scene) string {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v\n%s", err, out)
		}
	}
	return out
}

func TestSceneElements(t *testing.T) {
	s := NewScene(geom.R(0, 0, 10, 5), 400)
	s.Points([]geom.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}, 3, "fill:red")
	s.Marker(geom.Pt(5, 2.5), 4, "fill:blue")
	s.Polygon(geom.Polygon{{X: 1, Y: 1}, {X: 3, Y: 1}, {X: 2, Y: 3}}, "fill:green")
	s.Rect(geom.R(4, 1, 6, 2), "stroke:black")
	s.Circle(geom.Pt(8, 3), 1, "fill:none")
	s.Segment(geom.Pt(0, 0), geom.Pt(10, 5), "stroke:grey")
	s.Text(geom.Pt(5, 4), "hello <world> & \"friends\"", "font-size:10px")
	out := render(t, s)

	for _, want := range []string{"<circle", "<path", "<rect", "<line", "<text"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing element %s", want)
		}
	}
	if strings.Count(out, "<circle") != 4 { // 2 points + marker + circle
		t.Errorf("circle count = %d", strings.Count(out, "<circle"))
	}
	// Escaping.
	if strings.Contains(out, "<world>") {
		t.Error("unescaped text leaked into the SVG")
	}
	if !strings.Contains(out, "&lt;world&gt; &amp; &quot;friends&quot;") {
		t.Error("escaped text missing")
	}
	// Aspect ratio: world 10×5 at width 400 → height 200.
	if !strings.Contains(out, `width="400" height="200"`) {
		t.Error("dimensions wrong")
	}
}

func TestCoordinateMapping(t *testing.T) {
	s := NewScene(geom.R(0, 0, 100, 100), 100)
	// World (0, 100) is the top-left pixel (0, 0); world (100, 0) is
	// (100, 100): y is flipped.
	if got := s.sx(0); got != 0 {
		t.Errorf("sx(0) = %v", got)
	}
	if got := s.sy(100); got != 0 {
		t.Errorf("sy(100) = %v", got)
	}
	if got := s.sy(0); got != 100 {
		t.Errorf("sy(0) = %v", got)
	}
}

func TestRectRegion(t *testing.T) {
	s := NewScene(geom.R(0, 0, 1, 1), 200)
	rr := geom.NewRectRegion(geom.R(0.2, 0.2, 0.8, 0.8))
	rr.Subtract(geom.R(0.6, 0.6, 0.9, 0.9))
	s.RectRegion(rr, "fill:blue", "fill:red")
	out := render(t, s)
	// Background + base + one hole.
	if strings.Count(out, "<rect") != 3 {
		t.Errorf("rect count = %d", strings.Count(out, "<rect"))
	}
}

func TestDegenerate(t *testing.T) {
	s := NewScene(geom.R(0, 0, 1, 1), 0) // width defaults
	s.Polygon(geom.Polygon{{X: 0.5, Y: 0.5}}, "x")
	s.Rect(geom.EmptyRect(), "x")
	out := render(t, s)
	if strings.Contains(out, "<path") || strings.Count(out, "<rect") != 1 {
		t.Error("degenerate shapes must be skipped")
	}
}
