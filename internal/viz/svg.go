// Package viz renders datasets, queries and validity regions as SVG —
// a debugging and documentation aid for the geometric machinery (the
// figures of the paper, regenerable from live data structures).
package viz

import (
	"bufio"
	"fmt"
	"io"

	"lbsq/internal/geom"
)

// Scene accumulates drawable elements over a world-coordinate viewport
// and renders them into a fixed-size SVG with y flipped (world y grows
// up, SVG y grows down).
type Scene struct {
	World  geom.Rect
	Width  int // pixel width; height follows the world aspect ratio
	elems  []string
	styles map[string]string
}

// NewScene creates a scene over the given world rectangle, rendered at
// the given pixel width.
func NewScene(world geom.Rect, width int) *Scene {
	if width <= 0 {
		width = 800
	}
	return &Scene{World: world, Width: width}
}

func (s *Scene) height() int {
	if s.World.Width() <= 0 {
		return s.Width
	}
	return int(float64(s.Width) * s.World.Height() / s.World.Width())
}

func (s *Scene) sx(x float64) float64 {
	return (x - s.World.MinX) / s.World.Width() * float64(s.Width)
}

func (s *Scene) sy(y float64) float64 {
	return (s.World.MaxY - y) / s.World.Height() * float64(s.height())
}

// Points draws a set of points as small dots.
func (s *Scene) Points(pts []geom.Point, radiusPx float64, style string) {
	for _, p := range pts {
		s.elems = append(s.elems, fmt.Sprintf(
			`<circle cx="%.2f" cy="%.2f" r="%.2f" style="%s"/>`,
			s.sx(p.X), s.sy(p.Y), radiusPx, escape(style)))
	}
}

// Marker draws one emphasized point.
func (s *Scene) Marker(p geom.Point, radiusPx float64, style string) {
	s.Points([]geom.Point{p}, radiusPx, style)
}

// Polygon draws a closed polygon.
func (s *Scene) Polygon(pg geom.Polygon, style string) {
	if len(pg) < 2 {
		return
	}
	d := ""
	for i, p := range pg {
		cmd := "L"
		if i == 0 {
			cmd = "M"
		}
		d += fmt.Sprintf("%s%.2f %.2f ", cmd, s.sx(p.X), s.sy(p.Y))
	}
	d += "Z"
	s.elems = append(s.elems, fmt.Sprintf(`<path d="%s" style="%s"/>`, d, escape(style)))
}

// Rect draws a rectangle.
func (s *Scene) Rect(r geom.Rect, style string) {
	if r.IsEmpty() {
		return
	}
	s.elems = append(s.elems, fmt.Sprintf(
		`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" style="%s"/>`,
		s.sx(r.MinX), s.sy(r.MaxY),
		r.Width()/s.World.Width()*float64(s.Width),
		r.Height()/s.World.Height()*float64(s.height()),
		escape(style)))
}

// RectRegion draws a rectilinear region: the base in one style and its
// holes in another.
func (s *Scene) RectRegion(rr *geom.RectRegion, baseStyle, holeStyle string) {
	s.Rect(rr.Base, baseStyle)
	for _, h := range rr.Holes {
		s.Rect(h, holeStyle)
	}
}

// Circle draws a circle of world-coordinate radius.
func (s *Scene) Circle(c geom.Point, r float64, style string) {
	s.elems = append(s.elems, fmt.Sprintf(
		`<circle cx="%.2f" cy="%.2f" r="%.2f" style="%s"/>`,
		s.sx(c.X), s.sy(c.Y), r/s.World.Width()*float64(s.Width), escape(style)))
}

// Segment draws a line segment.
func (s *Scene) Segment(a, b geom.Point, style string) {
	s.elems = append(s.elems, fmt.Sprintf(
		`<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" style="%s"/>`,
		s.sx(a.X), s.sy(a.Y), s.sx(b.X), s.sy(b.Y), escape(style)))
}

// Text places a label at a world coordinate.
func (s *Scene) Text(p geom.Point, text, style string) {
	s.elems = append(s.elems, fmt.Sprintf(
		`<text x="%.2f" y="%.2f" style="%s">%s</text>`,
		s.sx(p.X), s.sy(p.Y), escape(style), escape(text)))
}

// WriteSVG renders the scene.
func (s *Scene) WriteSVG(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		s.Width, s.height(), s.Width, s.height())
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="white"/>`+"\n", s.Width, s.height())
	for _, e := range s.elems {
		fmt.Fprintln(bw, e)
	}
	fmt.Fprintln(bw, "</svg>")
	return bw.Flush()
}

// escape sanitizes attribute/text content.
func escape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '&':
			out = append(out, "&amp;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
