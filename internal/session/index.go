package session

import (
	"math"
	"sync"

	"lbsq/internal/core"
	"lbsq/internal/geom"
)

// gridDim is the region index's resolution per axis (gridDim² cells).
const gridDim = 64

// armed is one session's region as registered in the region index: the
// cached validity state plus the conservative influence rectangle —
// the area within which a mutation can possibly puncture the region.
// Entries are immutable after publication; a re-arm builds a new one.
type armed struct {
	s *Session

	// rect is the influence rectangle: every point whose insertion or
	// deletion can change the session's answer anywhere in its region
	// lies inside it (proof in the DESIGN.md §7 derivation).
	rect geom.Rect

	nn      *core.NNValidity
	win     *core.WindowValidity
	qx, qy  float64
	members map[int64]struct{}

	// INSQ entries (insq strategy NN sessions) dispatch mutations by
	// distance to the set's anchor instead of puncture geometry: inside
	// insGuard a mutation is logged for the next repair, outside it is
	// provably irrelevant.
	insq      bool
	insAnchor geom.Point
	insGuard  float64

	// Covered cell range, fixed at arm time so disarm visits the same
	// cells even for rects straddling the universe boundary.
	c0, r0, c1, r1 int
}

// buildArmed derives the index entry for a fresh answer; nil means the
// region is degenerate (empty region — the result changes under any
// movement) and the session cannot be armed.
func buildArmed(s *Session, v *core.NNValidity, wv *core.WindowValidity) *armed {
	switch s.kind {
	case NN:
		if s.usesINSQ() {
			return buildArmedINSQ(s, v)
		}
		if v == nil || v.Region.IsEmpty() {
			return nil
		}
		members := make(map[int64]struct{}, len(v.Neighbors))
		// dmax bounds dist(x, member) over region points x: dist(·, m)
		// is convex, so its maximum over the convex region is attained
		// at a vertex. Any point p puncturing the region satisfies
		// dist(x, p) < dist(x, m) ≤ dmax for some region point x, so p
		// lies within dmax of the region's bounding box. The members
		// themselves also lie within dmax of a region vertex, so the
		// delete test is covered by the same rectangle.
		dmax := 0.0
		for _, nb := range v.Neighbors {
			members[nb.Item.ID] = struct{}{}
			for _, vert := range v.Region {
				if d := vert.Dist(nb.Item.P); d > dmax {
					dmax = d
				}
			}
		}
		return &armed{
			s:       s,
			rect:    v.Region.Bounds().Inflate(dmax, dmax),
			nn:      v,
			members: members,
		}
	case Window:
		if wv == nil || wv.InnerRect.IsEmpty() {
			return nil
		}
		members := make(map[int64]struct{}, len(wv.Result))
		for _, it := range wv.Result {
			members[it.ID] = struct{}{}
		}
		qx, qy := wv.Window.Width(), wv.Window.Height()
		// A point can affect the window result at some focus f in the
		// region only if its Minkowski rectangle reaches f; the region
		// is contained in InnerRect, so inflating InnerRect by the
		// half-extents covers every such point. Result members are
		// within the half-extents of every InnerRect point by
		// construction (InnerRect ⊆ each member's rectangle).
		return &armed{
			s:       s,
			rect:    wv.InnerRect.Inflate(qx/2, qy/2),
			win:     wv,
			qx:      qx,
			qy:      qy,
			members: members,
		}
	}
	return nil
}

// buildArmedINSQ derives the index entry of an insq-strategy NN
// session. The influence area is the guard disk around the set's
// anchor: only mutations strictly inside the guard can affect the
// answer, and every such point lies in the anchor±G square. A set with
// an infinite guard (whole dataset) or a degenerate one cannot be
// armed — the session then rebuilds on every move, which only happens
// on datasets barely larger than k+slack.
func buildArmedINSQ(s *Session, v *core.NNValidity) *armed {
	set := s.ins
	if v == nil || set == nil || set.Len() < set.K ||
		math.IsInf(set.Guard, 1) || !(set.Guard > 0) {
		return nil
	}
	members := make(map[int64]struct{}, set.K)
	for _, m := range set.Members() {
		members[m.ID] = struct{}{}
	}
	g := set.Guard
	return &armed{
		s:         s,
		rect:      geom.R(set.Anchor.X-g, set.Anchor.Y-g, set.Anchor.X+g, set.Anchor.Y+g),
		nn:        v,
		members:   members,
		insq:      true,
		insAnchor: set.Anchor,
		insGuard:  g,
	}
}

// puncturedByInsert reports whether inserting a point at p can change
// the session's answer somewhere in its armed region. NN: exact — p
// punctures iff some region point is strictly closer to p than to some
// result member (the clipped region is non-empty). Window:
// conservative — p's Minkowski rectangle reaches the inner rectangle
// (it might only reach already-subtracted holes, which costs a
// spurious re-query, never a wrong answer).
func (a *armed) puncturedByInsert(p geom.Point) bool {
	if !a.rect.Contains(p) {
		return false
	}
	if a.nn != nil {
		for _, nb := range a.nn.Neighbors {
			if !a.nn.Region.ClipHalfPlane(geom.Bisector(p, nb.Item.P)).IsEmpty() {
				return true
			}
		}
		return false
	}
	return geom.RectCenteredAt(p, a.qx, a.qy).Intersects(a.win.InnerRect)
}

// holdsMember reports whether the deleted item id is part of the
// session's cached result (the only deletions that can shrink a result
// or change a k-NN set inside the armed region).
func (a *armed) holdsMember(id int64) bool {
	_, ok := a.members[id]
	return ok
}

// cell is one grid cell of the region index. The per-cell mutex also
// orders an arm against a concurrent mutation scan: whichever runs
// second observes the other's effect (entry present, or epoch moved).
type cell struct {
	mu      sync.Mutex
	entries map[*armed]struct{}
}

// regionIndex is a uniform gridDim×gridDim grid over the universe
// holding every armed session region, keyed by its influence
// rectangle. Coordinates outside the universe clamp to the border
// cells, so out-of-universe mutations still meet the regions whose
// influence rectangles extend past the boundary.
type regionIndex struct {
	universe geom.Rect
	cw, ch   float64
	cells    []cell
}

func newRegionIndex(universe geom.Rect) *regionIndex {
	return &regionIndex{
		universe: universe,
		cw:       universe.Width() / gridDim,
		ch:       universe.Height() / gridDim,
		cells:    make([]cell, gridDim*gridDim),
	}
}

func clampCell(c int) int {
	if c < 0 {
		return 0
	}
	if c >= gridDim {
		return gridDim - 1
	}
	return c
}

func (idx *regionIndex) col(x float64) int {
	if idx.cw <= 0 {
		return 0
	}
	return clampCell(int((x - idx.universe.MinX) / idx.cw))
}

func (idx *regionIndex) row(y float64) int {
	if idx.ch <= 0 {
		return 0
	}
	return clampCell(int((y - idx.universe.MinY) / idx.ch))
}

// arm registers the entry in every cell its influence rectangle
// overlaps (clamped to the grid).
func (idx *regionIndex) arm(a *armed) {
	a.c0, a.r0 = idx.col(a.rect.MinX), idx.row(a.rect.MinY)
	a.c1, a.r1 = idx.col(a.rect.MaxX), idx.row(a.rect.MaxY)
	for r := a.r0; r <= a.r1; r++ {
		for c := a.c0; c <= a.c1; c++ {
			cl := &idx.cells[r*gridDim+c]
			cl.mu.Lock()
			if cl.entries == nil {
				cl.entries = make(map[*armed]struct{})
			}
			cl.entries[a] = struct{}{}
			cl.mu.Unlock()
		}
	}
}

// disarm removes the entry from the cells recorded at arm time.
func (idx *regionIndex) disarm(a *armed) {
	for r := a.r0; r <= a.r1; r++ {
		for c := a.c0; c <= a.c1; c++ {
			cl := &idx.cells[r*gridDim+c]
			cl.mu.Lock()
			delete(cl.entries, a)
			cl.mu.Unlock()
		}
	}
}

// collect returns the armed entries whose influence rectangle contains
// p — the only sessions a mutation at p can possibly affect. Only p's
// cell is consulted: every entry whose rectangle contains p is
// registered there (cell assignment is monotone in the clamped
// coordinates).
func (idx *regionIndex) collect(p geom.Point) []*armed {
	cl := &idx.cells[idx.row(p.Y)*gridDim+idx.col(p.X)]
	cl.mu.Lock()
	var out []*armed
	for a := range cl.entries {
		if a.rect.Contains(p) {
			out = append(out, a)
		}
	}
	cl.mu.Unlock()
	return out
}
