package session

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"lbsq/internal/core"
	"lbsq/internal/dataset"
	"lbsq/internal/geom"
	"lbsq/internal/qexec"
	"lbsq/internal/rtree"
)

// harness couples a single-server engine with a session manager the
// way the DB facade does, exposing the mutation hooks tests drive by
// hand.
type harness struct {
	d   *dataset.Dataset
	srv *core.Server
	mu  sync.RWMutex
	ex  *qexec.Executor
	m   *Manager
}

func newHarness(t *testing.T, n int, seed int64, opts Options) *harness {
	t.Helper()
	h := &harness{d: dataset.Uniform(n, seed)}
	h.srv = core.NewServer(h.d.Tree(), h.d.Universe)
	h.ex = qexec.New(h.srv, &h.mu, nil, qexec.Config{})
	h.m = NewManager(h.ex, h.d.Universe, opts)
	return h
}

// insert mutates the tree with the full session epoch protocol.
func (h *harness) insert(it rtree.Item) {
	h.m.MutationBegin()
	h.ex.Invalidate()
	h.mu.Lock()
	h.srv.Tree.Insert(it)
	h.mu.Unlock()
	h.ex.Invalidate()
	h.m.OnInsert(it)
}

func (h *harness) delete(it rtree.Item) bool {
	h.m.MutationBegin()
	h.ex.Invalidate()
	h.mu.Lock()
	ok := h.srv.Tree.Delete(it)
	h.mu.Unlock()
	h.ex.Invalidate()
	if ok {
		h.m.OnDelete(it)
	}
	return ok
}

// freshNN answers the reference query directly against the tree.
func (h *harness) freshNN(t *testing.T, q geom.Point, k int) *core.NNValidity {
	t.Helper()
	h.mu.RLock()
	defer h.mu.RUnlock()
	v, _, err := h.srv.NNQuery(q, k)
	if err != nil {
		t.Fatalf("reference NNQuery: %v", err)
	}
	return v
}

func ids(nbs []rtree.Item) map[int64]bool {
	out := make(map[int64]bool, len(nbs))
	for _, it := range nbs {
		out[it.ID] = true
	}
	return out
}

// sameAnswer compares a session NN answer with the reference as a
// set: the validity region preserves the k-NN membership, not its
// ranking, and ties make raw ID comparison ambiguous — so the sorted
// distance multisets (to the probe point) must match.
func sameAnswer(q geom.Point, got, want *core.NNValidity) bool {
	if len(got.Neighbors) != len(want.Neighbors) {
		return false
	}
	dists := func(v *core.NNValidity) []float64 {
		out := make([]float64, len(v.Neighbors))
		for i, nb := range v.Neighbors {
			out[i] = nb.Item.P.Dist(q)
		}
		sort.Float64s(out)
		return out
	}
	g, w := dists(got), dists(want)
	for i := range g {
		if !geom.Eq(g[i], w[i]) {
			return false
		}
	}
	return true
}

func TestMoveHitZeroAccesses(t *testing.T) {
	h := newHarness(t, 2000, 7, Options{PrefetchWorkers: -1})
	ctx := context.Background()
	start := h.d.Universe.Center()
	s, res, err := h.m.OpenNN(ctx, start, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Requeried || res.NN == nil {
		t.Fatalf("open: want initial requery with answer, got %+v", res)
	}
	// Tiny steps stay inside the validity region (regions of uniform
	// data are far larger than 1e-9 of the universe).
	step := geom.Pt(h.d.Universe.Width()*1e-9, 0)
	p := start
	for i := 0; i < 5; i++ {
		p = p.Add(step)
		h.srv.Tree.ResetAccesses()
		mv, err := h.m.Move(ctx, s.ID(), p)
		if err != nil {
			t.Fatal(err)
		}
		if !mv.Hit {
			t.Fatalf("move %d: want in-region hit, got %+v", i, mv)
		}
		if n := h.srv.Tree.NodeAccesses(); n != 0 {
			t.Fatalf("move %d: in-region hit performed %d node accesses, want 0", i, n)
		}
		if want := h.freshNN(t, p, 2); !sameAnswer(p, mv.NN, want) {
			t.Fatalf("move %d: hit answer differs from fresh query", i)
		}
	}
}

func TestMoveRequeryTracksTruth(t *testing.T) {
	h := newHarness(t, 1500, 11, Options{PrefetchWorkers: -1})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	u := h.d.Universe
	p := u.Center()
	s, _, err := h.m.OpenNN(ctx, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A random walk long enough to exit regions many times; every
	// answer must match a fresh query at the same position.
	for i := 0; i < 400; i++ {
		p = geom.Pt(
			clamp(p.X+(rng.Float64()-0.5)*u.Width()*0.01, u.MinX, u.MaxX),
			clamp(p.Y+(rng.Float64()-0.5)*u.Height()*0.01, u.MinY, u.MaxY),
		)
		mv, err := h.m.Move(ctx, s.ID(), p)
		if err != nil {
			t.Fatal(err)
		}
		if want := h.freshNN(t, p, 3); !sameAnswer(p, mv.NN, want) {
			t.Fatalf("step %d at %v: session answer diverged from fresh query (hit=%v)", i, p, mv.Hit)
		}
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func TestInsertPushInvalidation(t *testing.T) {
	h := newHarness(t, 2000, 13, Options{PrefetchWorkers: -1})
	ctx := context.Background()
	p := h.d.Universe.Center()
	s, res, err := h.m.OpenNN(ctx, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	seq0 := res.Seq

	// A point right on the query position displaces the current NN.
	intruder := rtree.Item{ID: 1 << 40, P: p.Add(geom.Pt(1e-7, 1e-7))}
	h.insert(intruder)

	seq, ok, err := h.m.Events(ctx, s.ID(), seq0)
	if err != nil || !ok || seq <= seq0 {
		t.Fatalf("Events after puncturing insert: seq=%d ok=%v err=%v, want new seq", seq, ok, err)
	}
	mv, err := h.m.Move(ctx, s.ID(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !mv.Requeried || !mv.Invalidated {
		t.Fatalf("move after invalidation: want invalidated requery, got %+v", mv)
	}
	if mv.NN.Neighbors[0].Item.ID != intruder.ID {
		t.Fatalf("move after insert: NN = %d, want intruder %d", mv.NN.Neighbors[0].Item.ID, intruder.ID)
	}

	// And the session recovers: the next in-region move is a hit again.
	mv, err = h.m.Move(ctx, s.ID(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !mv.Hit {
		t.Fatalf("move after re-arm: want hit, got %+v", mv)
	}
}

func TestDeleteMemberInvalidation(t *testing.T) {
	h := newHarness(t, 2000, 17, Options{PrefetchWorkers: -1})
	ctx := context.Background()
	p := h.d.Universe.Center()
	s, res, err := h.m.OpenNN(ctx, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	victim := res.NN.Neighbors[0].Item
	if !h.delete(victim) {
		t.Fatalf("reference member %d not deletable", victim.ID)
	}
	mv, err := h.m.Move(ctx, s.ID(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !mv.Requeried || !mv.Invalidated {
		t.Fatalf("move after member delete: want invalidated requery, got %+v", mv)
	}
	if mv.NN.Neighbors[0].Item.ID == victim.ID {
		t.Fatalf("deleted item %d still reported as NN", victim.ID)
	}
}

func TestFarMutationsKeepRegionArmed(t *testing.T) {
	h := newHarness(t, 2000, 19, Options{PrefetchWorkers: -1})
	ctx := context.Background()
	u := h.d.Universe
	// Query near one corner, mutations near the opposite corner.
	p := geom.Pt(u.MinX+u.Width()*0.1, u.MinY+u.Height()*0.1)
	far := geom.Pt(u.MaxX-u.Width()*0.05, u.MaxY-u.Height()*0.05)
	s, _, err := h.m.OpenNN(ctx, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	it := rtree.Item{ID: 1 << 41, P: far}
	h.insert(it)
	h.delete(it)
	mv, err := h.m.Move(ctx, s.ID(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !mv.Hit {
		t.Fatalf("move after far-away churn: want hit (no invalidation), got %+v", mv)
	}
	if want := h.freshNN(t, p, 2); !sameAnswer(p, mv.NN, want) {
		t.Fatal("hit answer diverged from fresh query after far churn")
	}
}

func TestWindowSessionLifecycle(t *testing.T) {
	h := newHarness(t, 2000, 23, Options{PrefetchWorkers: -1})
	ctx := context.Background()
	u := h.d.Universe
	f := u.Center()
	qx, qy := u.Width()*0.05, u.Height()*0.05
	s, res, err := h.m.OpenWindow(ctx, f, qx, qy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Window == nil {
		t.Fatal("open: no window answer")
	}
	// An in-region micro-move is a hit with zero accesses.
	p := f.Add(geom.Pt(u.Width()*1e-9, 0))
	h.srv.Tree.ResetAccesses()
	mv, err := h.m.Move(ctx, s.ID(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !mv.Hit || h.srv.Tree.NodeAccesses() != 0 {
		t.Fatalf("window hit: got %+v with %d accesses", mv, h.srv.Tree.NodeAccesses())
	}
	// Inserting inside the current window punctures the region.
	h.insert(rtree.Item{ID: 1 << 42, P: p})
	mv, err = h.m.Move(ctx, s.ID(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !mv.Requeried || !mv.Invalidated {
		t.Fatalf("window move after insert: want invalidated requery, got %+v", mv)
	}
	found := false
	for _, it := range mv.Window.Result {
		if it.ID == 1<<42 {
			found = true
		}
	}
	if !found {
		t.Fatal("window requery missing the inserted point")
	}
}

func TestLifecycleErrors(t *testing.T) {
	h := newHarness(t, 500, 29, Options{TTL: 10 * time.Millisecond, PrefetchWorkers: -1})
	ctx := context.Background()
	if _, err := h.m.Move(ctx, 999, h.d.Universe.Center()); err != ErrNotFound {
		t.Fatalf("unknown id: err=%v, want ErrNotFound", err)
	}
	s, _, err := h.m.OpenNN(ctx, h.d.Universe.Center(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.m.Close(s.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := h.m.Move(ctx, s.ID(), h.d.Universe.Center()); err != ErrExpired {
		t.Fatalf("closed session: err=%v, want ErrExpired", err)
	}
	if err := h.m.Close(s.ID()); err != ErrExpired {
		t.Fatalf("double close: err=%v, want ErrExpired", err)
	}
	// TTL expiry.
	s2, _, err := h.m.OpenNN(ctx, h.d.Universe.Center(), 1)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(25 * time.Millisecond)
	if _, err := h.m.Move(ctx, s2.ID(), h.d.Universe.Center()); err != ErrExpired {
		t.Fatalf("expired session: err=%v, want ErrExpired", err)
	}
	if h.m.Len() != 0 {
		t.Fatalf("Len = %d after all sessions gone, want 0", h.m.Len())
	}
}

func TestMaxSessions(t *testing.T) {
	h := newHarness(t, 200, 31, Options{MaxSessions: 2, PrefetchWorkers: -1})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, _, err := h.m.OpenNN(ctx, h.d.Universe.Center(), 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := h.m.OpenNN(ctx, h.d.Universe.Center(), 1); err != ErrLimit {
		t.Fatalf("over-limit open: err=%v, want ErrLimit", err)
	}
}

func TestEventsLongPollTimeout(t *testing.T) {
	h := newHarness(t, 500, 37, Options{PrefetchWorkers: -1})
	s, _, err := h.m.OpenNN(context.Background(), h.d.Universe.Center(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	seq, ok, err := h.m.Events(ctx, s.ID(), 0)
	if err != nil || ok {
		t.Fatalf("quiet long-poll: seq=%d ok=%v err=%v, want timeout without event", seq, ok, err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("long-poll returned before the deadline with no event")
	}
}

func TestPrefetchServesPredictedExit(t *testing.T) {
	h := newHarness(t, 3000, 41, Options{PrefetchWorkers: 2})
	ctx := context.Background()
	u := h.d.Universe
	p := geom.Pt(u.MinX+u.Width()*0.2, u.Center().Y)
	s, _, err := h.m.OpenNN(ctx, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	step := geom.Pt(u.Width()*0.002, 0) // straight east, constant speed
	sawPrefetch := false
	for i := 0; i < 300 && !sawPrefetch; i++ {
		p = p.Add(step)
		if p.X >= u.MaxX {
			break
		}
		mv, err := h.m.Move(ctx, s.ID(), p)
		if err != nil {
			t.Fatal(err)
		}
		sawPrefetch = mv.Prefetched
		if want := h.freshNN(t, p, 1); !sameAnswer(p, mv.NN, want) {
			t.Fatalf("step %d: answer diverged (prefetched=%v)", i, mv.Prefetched)
		}
		// Let the background prefetch land before the next report —
		// the deterministic stand-in for a real client's dwell time.
		waitPrefetchIdle(t, s)
	}
	if !sawPrefetch {
		t.Fatal("directed fleet never hit a prefetched region")
	}
}

// waitPrefetchIdle blocks until the session has no prefetch in flight.
func waitPrefetchIdle(t *testing.T, s *Session) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		busy := s.pfBusy
		s.mu.Unlock()
		if !busy {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("prefetch never completed")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestChurnNeverServesStaleResult is the subsystem's core correctness
// property under concurrency: movers answering from armed regions race
// Insert/Delete churn, and a session must never serve an answer that
// excludes its true result. The checkable half: once a Delete(X) has
// completed, no later Move may report X; once the observer's own
// Insert(X) has completed, a Move pinned to X's position must report X
// (X is made the unambiguous nearest neighbor). Run with -race.
func TestChurnNeverServesStaleResult(t *testing.T) {
	h := newHarness(t, 2000, 43, Options{PrefetchWorkers: 2})
	ctx := context.Background()
	u := h.d.Universe

	// The observed item sits mid-universe; the observer pins its moves
	// within a hair of it, so whenever X is present it is the true NN.
	xp := geom.Pt(u.Center().X, u.Center().Y)
	x := rtree.Item{ID: 1 << 43, P: xp}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Background movers: random walkers churning arm/disarm traffic.
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			p := geom.Pt(u.MinX+rng.Float64()*u.Width(), u.MinY+rng.Float64()*u.Height())
			s, _, err := h.m.OpenNN(ctx, p, 2)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				p = geom.Pt(
					clamp(p.X+(rng.Float64()-0.5)*u.Width()*0.02, u.MinX, u.MaxX),
					clamp(p.Y+(rng.Float64()-0.5)*u.Height()*0.02, u.MinY, u.MaxY),
				)
				if _, err := h.m.Move(ctx, s.ID(), p); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	// Background churn away from X, stressing the epoch protocol.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(77))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			it := rtree.Item{
				ID: int64(1<<44) + int64(i%64),
				P:  geom.Pt(u.MinX+rng.Float64()*u.Width(), u.MinY+rng.Float64()*u.Height()),
			}
			h.insert(it)
			h.delete(it)
		}
	}()

	// The observer: alternate X's presence and verify every Move
	// against it. The insert/delete runs in this goroutine, so each
	// check has a completed mutation ordered before it.
	watcher, _, err := h.m.OpenNN(ctx, xp, 1)
	if err != nil {
		t.Fatal(err)
	}
	probe := xp.Add(geom.Pt(u.Width()*1e-10, 0))
	for round := 0; round < 60; round++ {
		h.insert(x)
		mv, err := h.m.Move(ctx, watcher.ID(), probe)
		if err != nil {
			t.Fatal(err)
		}
		if mv.NN.Neighbors[0].Item.ID != x.ID {
			t.Fatalf("round %d: X present but Move reports NN %d (hit=%v)", round, mv.NN.Neighbors[0].Item.ID, mv.Hit)
		}
		if !h.delete(x) {
			t.Fatalf("round %d: X vanished", round)
		}
		mv, err = h.m.Move(ctx, watcher.ID(), probe)
		if err != nil {
			t.Fatal(err)
		}
		if mv.NN.Neighbors[0].Item.ID == x.ID {
			t.Fatalf("round %d: X deleted but Move still reports it (hit=%v)", round, mv.Hit)
		}
	}
	close(stop)
	wg.Wait()
}
