package session

import (
	"lbsq/internal/geom"
	"lbsq/internal/obs"
)

// Move outcome label values of lbsq_session_moves_total.
const (
	moveResultHit      = "hit"
	moveResultPrefetch = "prefetch"
	moveResultRequery  = "requery"
)

// Prefetch event label values of lbsq_session_prefetch_total.
const (
	pfEventIssued  = "issued"
	pfEventHit     = "hit"
	pfEventWaste   = "waste"
	pfEventDropped = "dropped"
)

// metrics holds the manager's always-on instruments. A nil Registry in
// Options meters into a private registry, so every field is non-nil
// and the hot path stays branch-free.
type metrics struct {
	opens  *obs.Counter
	closes *obs.Counter

	moveHit      *obs.Counter
	movePrefetch *obs.Counter
	moveRequery  *obs.Counter

	invalidations *obs.Counter

	pfIssued  *obs.Counter
	pfHit     *obs.Counter
	pfWaste   *obs.Counter
	pfDropped *obs.Counter
}

func newMetrics(reg *obs.Registry, m *Manager) *metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	met := &metrics{
		opens: reg.Counter("lbsq_sessions_opened_total",
			"Continuous-query sessions opened.", nil),
		closes: reg.Counter("lbsq_sessions_closed_total",
			"Continuous-query sessions closed or expired.", nil),
		moveHit: reg.Counter("lbsq_session_moves_total",
			"Session position updates, by how they were answered.",
			obs.Labels{"result": moveResultHit}),
		movePrefetch: reg.Counter("lbsq_session_moves_total",
			"Session position updates, by how they were answered.",
			obs.Labels{"result": moveResultPrefetch}),
		moveRequery: reg.Counter("lbsq_session_moves_total",
			"Session position updates, by how they were answered.",
			obs.Labels{"result": moveResultRequery}),
		invalidations: reg.Counter("lbsq_session_invalidations_total",
			"Armed session regions punctured by Insert/Delete (push invalidations).", nil),
		pfIssued: reg.Counter("lbsq_session_prefetch_total",
			"Trajectory-prefetch lifecycle events.",
			obs.Labels{"event": pfEventIssued}),
		pfHit: reg.Counter("lbsq_session_prefetch_total",
			"Trajectory-prefetch lifecycle events.",
			obs.Labels{"event": pfEventHit}),
		pfWaste: reg.Counter("lbsq_session_prefetch_total",
			"Trajectory-prefetch lifecycle events.",
			obs.Labels{"event": pfEventWaste}),
		pfDropped: reg.Counter("lbsq_session_prefetch_total",
			"Trajectory-prefetch lifecycle events.",
			obs.Labels{"event": pfEventDropped}),
	}
	reg.GaugeFunc("lbsq_sessions_active",
		"Currently open continuous-query sessions.", nil,
		func() float64 { return float64(m.Len()) })
	reg.GaugeFunc("lbsq_session_region_hit_ratio",
		"Fraction of session moves answered from the armed region with zero index work.", nil,
		func() float64 {
			hit := float64(met.moveHit.Value())
			total := hit + float64(met.movePrefetch.Value()) + float64(met.moveRequery.Value())
			if geom.ExactZero(total) {
				return 0
			}
			return hit / total
		})
	return met
}
