package session

import (
	"lbsq/internal/geom"
	"lbsq/internal/obs"
)

// Move outcome label values of lbsq_session_moves_total.
const (
	moveResultHit      = "hit"
	moveResultPrefetch = "prefetch"
	moveResultRepair   = "repair"
	moveResultRequery  = "requery"
)

// Prefetch event label values of lbsq_session_prefetch_total.
const (
	pfEventIssued  = "issued"
	pfEventHit     = "hit"
	pfEventWaste   = "waste"
	pfEventDropped = "dropped"
)

// metrics holds the manager's always-on instruments. A nil Registry in
// Options meters into a private registry, so every field is non-nil
// and the hot path stays branch-free. Every series carries the
// manager's strategy label, so tpknn and insq managers metered into
// one registry stay separable.
type metrics struct {
	opens  *obs.Counter
	closes *obs.Counter

	moveHit      *obs.Counter
	movePrefetch *obs.Counter
	moveRepair   *obs.Counter
	moveRequery  *obs.Counter

	invalidations *obs.Counter

	pfIssued  *obs.Counter
	pfHit     *obs.Counter
	pfWaste   *obs.Counter
	pfDropped *obs.Counter
}

func newMetrics(reg *obs.Registry, m *Manager) *metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	strat := m.strategy
	met := &metrics{
		opens: reg.Counter("lbsq_sessions_opened_total",
			"Continuous-query sessions opened.",
			obs.Labels{"strategy": strat}),
		closes: reg.Counter("lbsq_sessions_closed_total",
			"Continuous-query sessions closed or expired.",
			obs.Labels{"strategy": strat}),
		moveHit: reg.Counter("lbsq_session_moves_total",
			"Session position updates, by how they were answered.",
			obs.Labels{"result": moveResultHit, "strategy": strat}),
		movePrefetch: reg.Counter("lbsq_session_moves_total",
			"Session position updates, by how they were answered.",
			obs.Labels{"result": moveResultPrefetch, "strategy": strat}),
		moveRepair: reg.Counter("lbsq_session_moves_total",
			"Session position updates, by how they were answered.",
			obs.Labels{"result": moveResultRepair, "strategy": strat}),
		moveRequery: reg.Counter("lbsq_session_moves_total",
			"Session position updates, by how they were answered.",
			obs.Labels{"result": moveResultRequery, "strategy": strat}),
		invalidations: reg.Counter("lbsq_session_invalidations_total",
			"Armed session regions punctured by Insert/Delete (push invalidations).",
			obs.Labels{"strategy": strat}),
		pfIssued: reg.Counter("lbsq_session_prefetch_total",
			"Trajectory-prefetch lifecycle events.",
			obs.Labels{"event": pfEventIssued, "strategy": strat}),
		pfHit: reg.Counter("lbsq_session_prefetch_total",
			"Trajectory-prefetch lifecycle events.",
			obs.Labels{"event": pfEventHit, "strategy": strat}),
		pfWaste: reg.Counter("lbsq_session_prefetch_total",
			"Trajectory-prefetch lifecycle events.",
			obs.Labels{"event": pfEventWaste, "strategy": strat}),
		pfDropped: reg.Counter("lbsq_session_prefetch_total",
			"Trajectory-prefetch lifecycle events.",
			obs.Labels{"event": pfEventDropped, "strategy": strat}),
	}
	reg.GaugeFunc("lbsq_sessions_active",
		"Currently open continuous-query sessions.",
		obs.Labels{"strategy": strat},
		func() float64 { return float64(m.Len()) })
	reg.GaugeFunc("lbsq_session_region_hit_ratio",
		"Fraction of session moves answered from the armed region with zero index work.",
		obs.Labels{"strategy": strat},
		func() float64 {
			hit := float64(met.moveHit.Value())
			total := hit + float64(met.movePrefetch.Value()) +
				float64(met.moveRepair.Value()) + float64(met.moveRequery.Value())
			if geom.ExactZero(total) {
				return 0
			}
			return hit / total
		})
	return met
}
