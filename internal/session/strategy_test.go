package session

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"lbsq/internal/geom"
	"lbsq/internal/rtree"
)

func TestParseStrategy(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  error
	}{
		{"", StrategyTPKNN, nil},
		{"tpknn", StrategyTPKNN, nil},
		{"insq", StrategyINSQ, nil},
		{"voronoi", "", ErrUnknownStrategy},
		{"INSQ", "", ErrUnknownStrategy},
		{"tpknn ", "", ErrUnknownStrategy},
	}
	for _, c := range cases {
		got, err := ParseStrategy(c.in)
		if got != c.want || !errors.Is(err, c.err) {
			t.Errorf("ParseStrategy(%q) = (%q, %v), want (%q, %v)", c.in, got, err, c.want, c.err)
		}
	}
}

// TestINSQMoveLifecycle walks an insq session through hits, repairs and
// rebuilds: every answer must match a fresh query, in-region hits and
// repairs must touch no index node, and both non-requery outcomes must
// actually occur.
func TestINSQMoveLifecycle(t *testing.T) {
	h := newHarness(t, 1500, 47, Options{Strategy: StrategyINSQ})
	ctx := context.Background()
	u := h.d.Universe
	p := u.Center()
	s, res, err := h.m.OpenNN(ctx, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Requeried || res.NN == nil {
		t.Fatalf("open: want initial requery with answer, got %+v", res)
	}
	rng := rand.New(rand.NewSource(9))
	hits, repairs, requeries := 0, 0, 0
	for i := 0; i < 500; i++ {
		p = geom.Pt(
			clamp(p.X+(rng.Float64()-0.5)*u.Width()*0.01, u.MinX, u.MaxX),
			clamp(p.Y+(rng.Float64()-0.5)*u.Height()*0.01, u.MinY, u.MaxY),
		)
		h.srv.Tree.ResetAccesses()
		mv, err := h.m.Move(ctx, s.ID(), p)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case mv.Hit:
			hits++
		case mv.Repaired:
			repairs++
		case mv.Requeried:
			requeries++
		default:
			t.Fatalf("step %d: no outcome flag set: %+v", i, mv)
		}
		if (mv.Hit || mv.Repaired) && h.srv.Tree.NodeAccesses() != 0 {
			t.Fatalf("step %d: zero-work outcome %+v performed %d node accesses", i, mv, h.srv.Tree.NodeAccesses())
		}
		if want := h.freshNN(t, p, 3); !sameAnswer(p, mv.NN, want) {
			t.Fatalf("step %d at %v: insq answer diverged from fresh query (%+v)", i, p, mv)
		}
	}
	if hits == 0 || repairs == 0 {
		t.Fatalf("walk exercised hits=%d repairs=%d requeries=%d; want hits and repairs > 0", hits, repairs, requeries)
	}
}

// TestINSQPushInvalidationRepairs checks that churn inside the guard is
// absorbed by the repair path: an insert that displaces a member and a
// delete of a member each invalidate the session, and the next move
// answers correctly by re-ranking the influential set — no index work.
func TestINSQPushInvalidationRepairs(t *testing.T) {
	h := newHarness(t, 2000, 53, Options{Strategy: StrategyINSQ})
	ctx := context.Background()
	p := h.d.Universe.Center()
	s, res, err := h.m.OpenNN(ctx, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	seq0 := res.Seq

	intruder := rtree.Item{ID: 1 << 45, P: p.Add(geom.Pt(1e-7, 1e-7))}
	h.insert(intruder)
	if seq, ok, err := h.m.Events(ctx, s.ID(), seq0); err != nil || !ok || seq <= seq0 {
		t.Fatalf("Events after in-guard insert: seq=%d ok=%v err=%v, want new seq", seq, ok, err)
	}
	h.srv.Tree.ResetAccesses()
	mv, err := h.m.Move(ctx, s.ID(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !mv.Repaired || !mv.Invalidated {
		t.Fatalf("move after in-guard insert: want invalidated repair, got %+v", mv)
	}
	if n := h.srv.Tree.NodeAccesses(); n != 0 {
		t.Fatalf("repair performed %d node accesses, want 0", n)
	}
	if mv.NN.Neighbors[0].Item.ID != intruder.ID {
		t.Fatalf("repair missed the intruder: NN %d, want %d", mv.NN.Neighbors[0].Item.ID, intruder.ID)
	}

	if !h.delete(intruder) {
		t.Fatal("intruder not deletable")
	}
	h.srv.Tree.ResetAccesses()
	mv, err = h.m.Move(ctx, s.ID(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !mv.Repaired || !mv.Invalidated {
		t.Fatalf("move after member delete: want invalidated repair, got %+v", mv)
	}
	if n := h.srv.Tree.NodeAccesses(); n != 0 {
		t.Fatalf("repair performed %d node accesses, want 0", n)
	}
	if mv.NN.Neighbors[0].Item.ID == intruder.ID {
		t.Fatal("deleted intruder still reported as NN after repair")
	}
	if want := h.freshNN(t, p, 2); !sameAnswer(p, mv.NN, want) {
		t.Fatal("repaired answer diverged from fresh query")
	}
}

// TestStrategiesAgreeOnEveryMove drives a tpknn and an insq session
// over one identical walk on one identical dataset, interleaved with
// churn, and requires the exact same kNN answer (as a distance
// multiset) from both at every step.
func TestStrategiesAgreeOnEveryMove(t *testing.T) {
	ht := newHarness(t, 1200, 59, Options{PrefetchWorkers: -1})
	hi := newHarness(t, 1200, 59, Options{Strategy: StrategyINSQ})
	ctx := context.Background()
	u := ht.d.Universe
	p := u.Center()
	st, _, err := ht.m.OpenNN(ctx, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	si, _, err := hi.m.OpenNN(ctx, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 300; i++ {
		if i%17 == 5 {
			it := rtree.Item{
				ID: int64(1<<46) + int64(i),
				P:  p.Add(geom.Pt((rng.Float64()-0.5)*u.Width()*0.01, (rng.Float64()-0.5)*u.Height()*0.01)),
			}
			ht.insert(it)
			hi.insert(it)
		}
		p = geom.Pt(
			clamp(p.X+(rng.Float64()-0.5)*u.Width()*0.02, u.MinX, u.MaxX),
			clamp(p.Y+(rng.Float64()-0.5)*u.Height()*0.02, u.MinY, u.MaxY),
		)
		mt, err := ht.m.Move(ctx, st.ID(), p)
		if err != nil {
			t.Fatal(err)
		}
		mi, err := hi.m.Move(ctx, si.ID(), p)
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswer(p, mt.NN, mi.NN) {
			t.Fatalf("step %d at %v: tpknn (%+v) and insq (%+v) answers diverged", i, p, mt, mi)
		}
		if want := ht.freshNN(t, p, 4); !sameAnswer(p, mt.NN, want) {
			t.Fatalf("step %d: tpknn answer diverged from fresh query", i)
		}
	}
}

// TestINSQChurnNeverServesStaleResult is TestChurnNeverServesStaleResult
// under the insq strategy: movers racing Insert/Delete churn, with the
// observer's alternating mutations flowing through the pending-mutation
// log and the repair path instead of full requeries. Run with -race.
func TestINSQChurnNeverServesStaleResult(t *testing.T) {
	h := newHarness(t, 2000, 43, Options{Strategy: StrategyINSQ})
	ctx := context.Background()
	u := h.d.Universe

	xp := geom.Pt(u.Center().X, u.Center().Y)
	x := rtree.Item{ID: 1 << 43, P: xp}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			p := geom.Pt(u.MinX+rng.Float64()*u.Width(), u.MinY+rng.Float64()*u.Height())
			s, _, err := h.m.OpenNN(ctx, p, 2)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				p = geom.Pt(
					clamp(p.X+(rng.Float64()-0.5)*u.Width()*0.02, u.MinX, u.MaxX),
					clamp(p.Y+(rng.Float64()-0.5)*u.Height()*0.02, u.MinY, u.MaxY),
				)
				if _, err := h.m.Move(ctx, s.ID(), p); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(77))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			it := rtree.Item{
				ID: int64(1<<44) + int64(i%64),
				P:  geom.Pt(u.MinX+rng.Float64()*u.Width(), u.MinY+rng.Float64()*u.Height()),
			}
			h.insert(it)
			h.delete(it)
		}
	}()

	watcher, _, err := h.m.OpenNN(ctx, xp, 1)
	if err != nil {
		t.Fatal(err)
	}
	probe := xp.Add(geom.Pt(u.Width()*1e-10, 0))
	for round := 0; round < 60; round++ {
		h.insert(x)
		mv, err := h.m.Move(ctx, watcher.ID(), probe)
		if err != nil {
			t.Fatal(err)
		}
		if mv.NN.Neighbors[0].Item.ID != x.ID {
			t.Fatalf("round %d: X present but Move reports NN %d (%+v)", round, mv.NN.Neighbors[0].Item.ID, mv)
		}
		if !h.delete(x) {
			t.Fatalf("round %d: X vanished", round)
		}
		mv, err = h.m.Move(ctx, watcher.ID(), probe)
		if err != nil {
			t.Fatal(err)
		}
		if mv.NN.Neighbors[0].Item.ID == x.ID {
			t.Fatalf("round %d: X deleted but Move still reports it (%+v)", round, mv)
		}
	}
	close(stop)
	wg.Wait()
}
