package session

import (
	"errors"
	"sync"

	"lbsq/internal/rtree"
)

// Session strategies: how an NN session maintains its server-side
// validity state between full queries. Window sessions always use the
// paper's machinery regardless of strategy.
const (
	// StrategyTPKNN is the paper's scheme (the default): each rebuild
	// runs a kNN query plus TP probes assembling the exact order-k
	// validity region (core.InfluenceSetKNN).
	StrategyTPKNN = "tpknn"
	// StrategyINSQ maintains an INSQ influential neighbor set
	// (internal/insq): one slightly larger kNN query per rebuild, a
	// guard distance instead of TP probes, in-region moves answered by
	// pure distance arithmetic, and churn repaired by re-ranking the
	// set instead of re-querying.
	StrategyINSQ = "insq"
)

// ErrUnknownStrategy reports an unrecognized session strategy name.
var ErrUnknownStrategy = errors.New(`session: unknown strategy (want "", "tpknn" or "insq")`)

// ParseStrategy normalizes a strategy name: the empty string selects
// the default (tpknn).
func ParseStrategy(name string) (string, error) {
	switch name {
	case "", StrategyTPKNN:
		return StrategyTPKNN, nil
	case StrategyINSQ:
		return StrategyINSQ, nil
	}
	return "", ErrUnknownStrategy
}

// usesINSQ reports whether this session runs the INSQ strategy (NN
// sessions under an insq manager; window sessions never do).
func (s *Session) usesINSQ() bool {
	return s.kind == NN && s.m.strategy == StrategyINSQ
}

// insqMut is one pending index mutation relevant to a session's
// influential set, logged by OnInsert/OnDelete and drained on the next
// slow path. Applying the log is idempotent, so a drained entry
// re-observed after a rebuild is harmless.
type insqMut struct {
	del bool
	it  rtree.Item
}

// insqLogCap bounds the per-session pending log; overflow forces the
// next slow path into a full rebuild instead of a repair.
const insqLogCap = 256

// insqLog holds a session's pending mutations under its own mutex, so
// the Insert/Delete notification path never contends with a Move
// holding s.mu through a requery.
type insqLog struct {
	mu       sync.Mutex
	pending  []insqMut
	overflow bool
}

// append records a mutation (called from OnInsert/OnDelete).
func (l *insqLog) append(mu insqMut) {
	l.mu.Lock()
	if len(l.pending) >= insqLogCap {
		l.overflow = true
	} else {
		l.pending = append(l.pending, mu)
	}
	l.mu.Unlock()
}

// drain applies the pending mutations to the set in arrival order and
// reports whether the log overflowed (set unusable, rebuild required).
func (l *insqLog) drain(apply func(insqMut)) bool {
	l.mu.Lock()
	pending := l.pending
	of := l.overflow
	l.pending, l.overflow = nil, false
	l.mu.Unlock()
	if of {
		return true
	}
	for _, mu := range pending {
		apply(mu)
	}
	return false
}

// clear discards the pending log (called right before a full rebuild,
// whose query observes the index state the log described).
func (l *insqLog) clear() {
	l.mu.Lock()
	l.pending, l.overflow = nil, false
	l.mu.Unlock()
}
