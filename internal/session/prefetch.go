package session

import (
	"context"

	"lbsq/internal/core"
	"lbsq/internal/geom"
)

// predictHorizon bounds the exit-point march: how many client steps
// ahead the trajectory is extrapolated looking for the region's exit.
const predictHorizon = 256

// prefetched is a background-computed next region, usable only while
// the mutation epoch it was computed under is still current.
type prefetched struct {
	nn    *core.NNValidity
	win   *core.WindowValidity
	epoch uint64
}

// covers reports whether the prefetched answer is exact at p (same
// test as Session.coversLocked).
func (pf *prefetched) covers(universe geom.Rect, p geom.Point) bool {
	if pf.nn != nil {
		return universe.Contains(p) && pf.nn.Valid(p)
	}
	if pf.win != nil {
		return pf.win.Valid(p)
	}
	return false
}

// predictExitLocked extrapolates the client's last displacement to the
// first predicted position outside the current region (s.mu held).
// Stationary clients, clients whose extrapolation leaves the universe,
// and regions not exited within the horizon yield no prediction.
func (s *Session) predictExitLocked(p, delta geom.Point) (geom.Point, bool) {
	step := delta.Norm()
	if geom.Zero(step) {
		return geom.Point{}, false
	}
	dir := delta.Scale(1 / step)
	x := p
	for i := 0; i < predictHorizon; i++ {
		x = x.Add(dir.Scale(step))
		if !s.m.universe.Contains(x) {
			return geom.Point{}, false
		}
		if !s.coversLocked(x) {
			return x, true
		}
	}
	return geom.Point{}, false
}

// maybePrefetch schedules a background computation of the region the
// client is predicted to enter next (s.mu held). At most one prefetch
// per session is in flight, and the pool is bounded: under overload
// the prefetch is dropped, never queued.
func (m *Manager) maybePrefetch(s *Session, p, delta geom.Point) {
	// INSQ sessions never prefetch: leaving the guard ellipse is
	// repaired by re-ranking the influential set, so there is no costly
	// exit to hide, and a prefetched set would need its own mutation
	// log to stay provably synced.
	if m.pfSlots == nil || s.pfBusy || s.invalid.Load() || s.usesINSQ() {
		return
	}
	exit, ok := s.predictExitLocked(p, delta)
	if !ok {
		return
	}
	if pf := s.pf; pf != nil && pf.epoch == m.epoch.Load() && pf.covers(m.universe, exit) {
		return // the predicted exit is already prefetched
	}
	select {
	case m.pfSlots <- struct{}{}:
	default:
		m.met.pfDropped.Inc()
		return
	}
	s.pfBusy = true
	m.met.pfIssued.Inc()
	go m.runPrefetch(s, exit)
}

// runPrefetch computes the validity region at the predicted position
// and stores it on the session if no mutation landed meanwhile. It
// runs detached from any request (the requesting Move has long
// returned), hence the background context.
func (m *Manager) runPrefetch(s *Session, at geom.Point) {
	defer func() { <-m.pfSlots }()
	epoch0 := m.epoch.Load()
	ctx := context.Background()
	var (
		v   *core.NNValidity
		wv  *core.WindowValidity
		err error
	)
	switch s.kind {
	case NN:
		v, _, _, _, err = m.exec.NNCached(ctx, at, s.k)
	case Window:
		wv, _, _, _, err = m.exec.WindowCached(ctx, geom.RectCenteredAt(at, s.qx, s.qy))
	}
	s.mu.Lock()
	s.pfBusy = false
	if err == nil && !s.closed.Load() && m.epoch.Load() == epoch0 {
		s.pf = &prefetched{nn: v, win: wv, epoch: epoch0}
	} else {
		m.met.pfWaste.Inc()
	}
	s.mu.Unlock()
}
