// Package session is the continuous-query session subsystem: the
// server-side half of the paper's mobile-client protocol. A stateless
// server hands a client a validity region and forgets it; a session
// keeps that region server-side, so the server can (a) answer a
// position update that stays inside the region with zero index work,
// (b) push an invalidation the moment an Insert/Delete punctures the
// region — something a stateless server cannot do at all — and
// (c) prefetch the next region along the client's trajectory before
// the client leaves the current one.
//
// Sessions are found by Insert/Delete events through a sharded spatial
// index of armed regions (a uniform grid over the universe), so a
// mutation tests only the sessions whose influence rectangle covers
// the mutated point — never a scan of all sessions.
package session

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lbsq/internal/core"
	"lbsq/internal/geom"
	"lbsq/internal/insq"
	"lbsq/internal/obs"
	"lbsq/internal/qexec"
	"lbsq/internal/rtree"
)

// Kind discriminates the continuous query a session maintains.
type Kind uint8

// Session kinds.
const (
	// NN is a continuous k-nearest-neighbor query.
	NN Kind = iota + 1
	// Window is a continuous window query of fixed extents centered at
	// the client's focus.
	Window
)

// Errors returned by session operations. The HTTP layer maps
// ErrNotFound to 404 (session_not_found) and ErrExpired to 410
// (session_expired).
var (
	// ErrNotFound reports a session id that was never issued (or is so
	// old its tombstone has been recycled).
	ErrNotFound = errors.New("session: not found")
	// ErrExpired reports a session that existed but is gone: closed by
	// the client or expired by the idle TTL.
	ErrExpired = errors.New("session: expired")
	// ErrLimit reports that opening one more session would exceed the
	// manager's MaxSessions cap.
	ErrLimit = errors.New("session: too many open sessions")
)

// Options configures a Manager.
type Options struct {
	// TTL expires sessions idle (no Move/Events activity) for longer
	// than this; zero keeps sessions until closed.
	TTL time.Duration
	// MaxSessions caps concurrently open sessions (0 selects 1<<20).
	MaxSessions int
	// PrefetchWorkers bounds the background pool computing predicted
	// next regions (0 selects 4; negative disables prefetch).
	PrefetchWorkers int
	// Strategy selects how NN sessions maintain their validity state
	// between full queries: StrategyTPKNN (default, also selected by
	// "") or StrategyINSQ. See ParseStrategy.
	Strategy string
	// Registry receives the session metrics (nil meters into a private
	// registry, keeping the hot path branch-free).
	Registry *obs.Registry
}

// defaults for Options zero values.
const (
	defaultMaxSessions     = 1 << 20
	defaultPrefetchWorkers = 4
)

// tombstoneCap bounds the closed/expired-id memory: ids older than the
// last tombstoneCap departures degrade from 410 to 404.
const tombstoneCap = 8192

// Manager tracks every open continuous-query session against one DB.
// All methods are safe for concurrent use.
type Manager struct {
	exec     *qexec.Executor
	universe geom.Rect
	strategy string

	ttl         time.Duration
	maxSessions int

	// epoch counts mutations, bumped on both sides of every
	// Insert/Delete (see MutationBegin). A region or prefetch computed
	// under epoch e is armed only if the epoch is still e — exactly the
	// validity-cache discipline of internal/qexec.
	epoch atomic.Uint64

	nextID atomic.Uint64

	mu        sync.RWMutex
	sessions  map[uint64]*Session
	tomb      map[uint64]struct{}
	tombOrder []uint64

	idx     *regionIndex
	pfSlots chan struct{} // prefetch slots; nil disables prefetch
	met     *metrics
}

// NewManager returns a session manager executing full queries through
// exec (which carries the DB's engine, cache and metrics registry).
// opts.Strategy must name a known strategy (callers validate with
// ParseStrategy; the facade rejects unknown names before reaching
// here).
func NewManager(exec *qexec.Executor, universe geom.Rect, opts Options) *Manager {
	strategy, err := ParseStrategy(opts.Strategy)
	if err != nil {
		panic(err)
	}
	m := &Manager{
		exec:        exec,
		universe:    universe,
		strategy:    strategy,
		ttl:         opts.TTL,
		maxSessions: opts.MaxSessions,
		sessions:    make(map[uint64]*Session),
		tomb:        make(map[uint64]struct{}),
		idx:         newRegionIndex(universe),
	}
	if m.maxSessions <= 0 {
		m.maxSessions = defaultMaxSessions
	}
	workers := opts.PrefetchWorkers
	if workers == 0 {
		workers = defaultPrefetchWorkers
	}
	if workers > 0 {
		m.pfSlots = make(chan struct{}, workers)
	}
	m.met = newMetrics(opts.Registry, m)
	return m
}

// Len returns the number of open sessions.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.sessions)
}

// Epoch returns the current mutation epoch (exposed for tests).
func (m *Manager) Epoch() uint64 { return m.epoch.Load() }

// Strategy returns the manager's normalized session strategy name.
func (m *Manager) Strategy() string { return m.strategy }

// Session is one registered continuous query. Its identity (kind, k,
// extents) is immutable; the cached validity state is guarded by mu and
// re-armed on every re-execution.
type Session struct {
	id   uint64
	m    *Manager
	kind Kind
	k    int
	qx   float64
	qy   float64

	// active is the unix-nano timestamp of the last client activity,
	// read lock-free by TTL expiry checks.
	active atomic.Int64
	closed atomic.Bool

	// invalid is set by push invalidation (a mutation punctured the
	// armed region) and cleared when a fresh region is armed.
	invalid atomic.Bool
	// seq counts invalidations; the events long-poll hands it to
	// clients so none are lost across re-arms.
	seq atomic.Uint64

	notifyMu sync.Mutex
	notifyCh chan struct{}

	// armed is the entry currently registered in the region index (nil
	// while unarmed). Entries are immutable after publication.
	armed atomic.Pointer[armed]

	mu     sync.Mutex
	nn     *core.NNValidity
	win    *core.WindowValidity
	last   geom.Point
	pf     *prefetched
	pfBusy bool

	// ins is the INSQ influential set (insq strategy NN sessions only),
	// guarded by mu; log is its pending-mutation side channel, written
	// by OnInsert/OnDelete under its own mutex so the notification path
	// never blocks on a Move holding mu through a requery.
	ins *insq.Set
	log insqLog
}

// MoveResult is the answer to one Move (or Open, which behaves as a
// first Move that always re-queries). Exactly one of Hit, Prefetched,
// Repaired, Requeried is set. Validity objects may be shared with the
// DB's validity cache and other sessions; treat them as read-only.
type MoveResult struct {
	// Hit reports that the position stayed inside the armed region: the
	// cached answer is still exact and no index work was done.
	Hit bool
	// Prefetched reports that the position left the armed region but
	// landed inside a region prefetched along the predicted trajectory,
	// so no synchronous query was needed.
	Prefetched bool
	// Repaired reports that the insq strategy rebuilt the answer by
	// re-ranking its influential set — no index work, despite a region
	// exit or invalidation that would have forced tpknn to re-query.
	Repaired bool
	// Requeried reports that a full query re-executed.
	Requeried bool
	// Invalidated reports that the miss was caused by push invalidation
	// (an Insert/Delete punctured the region) rather than region exit.
	Invalidated bool
	// Seq is the session's invalidation sequence number at answer time.
	Seq uint64

	// NN is the current answer of an NN session.
	NN *core.NNValidity
	// Window is the current answer of a Window session.
	Window *core.WindowValidity
	// Cost is the index cost of this move (zero for Hit/Prefetched).
	Cost core.QueryCost
}

// ID returns the session's numeric id.
func (s *Session) ID() uint64 { return s.id }

// Kind returns the session's query kind.
func (s *Session) Kind() Kind { return s.kind }

// OpenNN registers a continuous k-NN session at start and returns it
// with the initial answer.
func (m *Manager) OpenNN(ctx context.Context, start geom.Point, k int) (*Session, *MoveResult, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("session: k %d, want ≥ 1", k)
	}
	s := &Session{m: m, kind: NN, k: k, notifyCh: make(chan struct{})}
	return m.open(ctx, s, start)
}

// OpenWindow registers a continuous window session of extents qx×qy
// centered at the focus and returns it with the initial answer.
func (m *Manager) OpenWindow(ctx context.Context, focus geom.Point, qx, qy float64) (*Session, *MoveResult, error) {
	if qx <= 0 || qy <= 0 {
		return nil, nil, fmt.Errorf("session: window extents %g×%g, want positive", qx, qy)
	}
	s := &Session{m: m, kind: Window, qx: qx, qy: qy, notifyCh: make(chan struct{})}
	return m.open(ctx, s, focus)
}

func (m *Manager) open(ctx context.Context, s *Session, start geom.Point) (*Session, *MoveResult, error) {
	if m.Len() >= m.maxSessions {
		return nil, nil, ErrLimit
	}
	epoch0 := m.epoch.Load()
	res, err := m.runQuery(ctx, s, start)
	if err != nil {
		return nil, nil, err
	}
	s.touch()
	s.last = start
	s.id = m.nextID.Add(1)
	m.mu.Lock()
	if len(m.sessions) >= m.maxSessions {
		m.mu.Unlock()
		return nil, nil, ErrLimit
	}
	m.sessions[s.id] = s
	m.mu.Unlock()
	s.mu.Lock()
	s.adoptLocked(res.NN, res.Window, epoch0)
	s.mu.Unlock()
	m.met.opens.Inc()
	res.Seq = s.seq.Load()
	return s, res, nil
}

// lookup resolves an id to its session, expiring it first if the idle
// TTL has elapsed.
//
//lbsq:hotpath
func (m *Manager) lookup(id uint64) (*Session, error) {
	m.mu.RLock()
	s := m.sessions[id]
	_, gone := m.tomb[id]
	m.mu.RUnlock()
	if s == nil {
		if gone {
			return nil, ErrExpired
		}
		return nil, ErrNotFound
	}
	if m.ttl > 0 && time.Since(time.Unix(0, s.active.Load())) > m.ttl {
		m.retire(s) //lbsq:nocheck hotpath — TTL expiry: a cold, once-per-session event
		return nil, ErrExpired
	}
	return s, nil
}

// retire removes a session (close or TTL expiry), leaving a tombstone
// so later references answer "gone" rather than "never existed".
func (m *Manager) retire(s *Session) {
	m.mu.Lock()
	if _, open := m.sessions[s.id]; !open {
		m.mu.Unlock()
		return
	}
	delete(m.sessions, s.id)
	m.tomb[s.id] = struct{}{}
	m.tombOrder = append(m.tombOrder, s.id)
	if len(m.tombOrder) > tombstoneCap {
		delete(m.tomb, m.tombOrder[0])
		m.tombOrder = m.tombOrder[1:]
	}
	m.mu.Unlock()

	s.closed.Store(true)
	s.mu.Lock()
	if a := s.armed.Swap(nil); a != nil {
		m.idx.disarm(a)
	}
	s.mu.Unlock()
	s.broadcast() // wake long-pollers so they observe the closure
	m.met.closes.Inc()
}

// Close closes the session with the given id.
func (m *Manager) Close(id uint64) error {
	s, err := m.lookup(id)
	if err != nil {
		return err
	}
	m.retire(s)
	return nil
}

// Move reports the client's new position and returns the current
// answer: from the armed region when the position is still inside it
// and no mutation punctured it (zero index accesses), from the
// prefetched next region when the predicted exit was right, and by
// re-executing the query otherwise.
func (m *Manager) Move(ctx context.Context, id uint64, p geom.Point) (*MoveResult, error) {
	res := new(MoveResult)
	if err := m.MoveInto(ctx, id, p, res); err != nil {
		return nil, err
	}
	return res, nil
}

// MoveInto is Move writing the answer into a caller-supplied result,
// so a region hit — the steady state of a tracked client — performs no
// heap allocation at all (asserted by BenchmarkSessionMove).
//
//lbsq:hotpath
func (m *Manager) MoveInto(ctx context.Context, id uint64, p geom.Point, out *MoveResult) error {
	s, err := m.lookup(id)
	if err != nil {
		return err
	}
	s.touch()
	s.mu.Lock()
	defer s.mu.Unlock()
	delta := p.Sub(s.last)
	s.last = p

	if !s.invalid.Load() && s.coversLocked(p) {
		m.met.moveHit.Inc()
		s.resultInto(out)
		out.Hit = true
		m.maybePrefetch(s, p, delta)
		return nil
	}
	//lbsq:allowblock — per-session serialization by design: a session is a single moving client, and concurrent Moves on one session must not interleave requery with adopt
	return m.moveSlowLocked(ctx, s, p, delta, out) //lbsq:nocheck hotpath — miss path: the requery (or prefetch adoption) dominates, allocation here is immaterial
}

// moveSlowLocked handles the Move miss paths — prefetch adoption or a
// synchronous requery — with s.mu held.
func (m *Manager) moveSlowLocked(ctx context.Context, s *Session, p, delta geom.Point, out *MoveResult) error {
	if s.usesINSQ() {
		return m.insqSlowLocked(ctx, s, p, out)
	}
	invalidated := s.invalid.Load()

	// Region exit (or push invalidation): try the prefetched region
	// before paying for a synchronous query. The prefetch is usable
	// only if no mutation landed since it was computed.
	if pf := s.pf; pf != nil {
		s.pf = nil
		if !invalidated && pf.epoch == m.epoch.Load() && pf.covers(m.universe, p) {
			s.adoptLocked(pf.nn, pf.win, pf.epoch)
			m.met.movePrefetch.Inc()
			m.met.pfHit.Inc()
			s.resultInto(out)
			out.Prefetched = true
			m.maybePrefetch(s, p, delta)
			return nil
		}
		m.met.pfWaste.Inc()
	}

	epoch0 := m.epoch.Load()
	res, err := m.runQuery(ctx, s, p)
	if err != nil {
		return err
	}
	s.adoptLocked(res.NN, res.Window, epoch0)
	m.met.moveRequery.Inc()
	res.Invalidated = invalidated
	res.Seq = s.seq.Load()
	m.maybePrefetch(s, p, delta)
	*out = *res
	return nil
}

// insqSlowLocked is the miss path of insq-strategy NN sessions (s.mu
// held): drain the pending mutation log into the influential set and
// try to repair it at p — a re-ranking of at most k+slack points, zero
// index accesses — falling back to a full rebuild only when the set is
// gone (poisoned), the log overflowed, or p escaped the guard ellipse.
func (m *Manager) insqSlowLocked(ctx context.Context, s *Session, p geom.Point, out *MoveResult) error {
	invalidated := s.invalid.Load()
	epoch0 := m.epoch.Load()
	if s.ins != nil {
		overflow := s.log.drain(func(mu insqMut) {
			if mu.del {
				s.ins.ApplyDelete(mu.it.ID)
			} else {
				s.ins.ApplyInsert(mu.it)
			}
		})
		if !overflow && s.ins.Repair(p) {
			// The set is exact as of the drain; adoptLocked's epoch
			// discipline (with insqPoisonLocked on failure) covers
			// mutations racing the repair, exactly like a requery.
			s.adoptLocked(core.GuardedValidity(s.ins, m.universe), nil, epoch0)
			m.met.moveRepair.Inc()
			s.resultInto(out)
			out.Repaired = true
			out.Invalidated = invalidated
			return nil
		}
	}
	epoch1 := m.epoch.Load()
	res, err := m.runQuery(ctx, s, p)
	if err != nil {
		return err
	}
	s.adoptLocked(res.NN, nil, epoch1)
	m.met.moveRequery.Inc()
	res.Invalidated = invalidated
	res.Seq = s.seq.Load()
	*out = *res
	return nil
}

// runQuery executes the session's full query at p through the DB's
// batch/cache executor.
func (m *Manager) runQuery(ctx context.Context, s *Session, p geom.Point) (*MoveResult, error) {
	res := &MoveResult{Requeried: true}
	switch s.kind {
	case NN:
		if s.usesINSQ() {
			set, cost, err := m.exec.INSQSet(ctx, p, s.k, insq.DefaultSlack(s.k))
			if err != nil {
				return nil, err
			}
			// The query observed every mutation the pending log describes
			// (entries are appended only after the mutation is visible in
			// the index), so the log restarts empty with the new set.
			// Mutations racing the query are caught by the caller's epoch
			// check. On the error path above, set and log are untouched
			// and stay coherent.
			s.log.clear()
			s.ins = set
			res.NN, res.Cost = core.GuardedValidity(set, m.universe), cost
			return res, nil
		}
		v, cost, _, _, err := m.exec.NNCached(ctx, p, s.k)
		if err != nil {
			return nil, err
		}
		res.NN, res.Cost = v, cost
	case Window:
		wv, cost, _, _, err := m.exec.WindowCached(ctx, geom.RectCenteredAt(p, s.qx, s.qy))
		if err != nil {
			return nil, err
		}
		res.Window, res.Cost = wv, cost
	default:
		return nil, fmt.Errorf("session: unknown kind %d", s.kind)
	}
	return res, nil
}

// resultLocked snapshots the session's current answer (s.mu held).
func (s *Session) resultLocked() *MoveResult {
	res := new(MoveResult)
	s.resultInto(res)
	return res
}

// resultInto writes the session's current answer into out (s.mu held).
//
//lbsq:hotpath
func (s *Session) resultInto(out *MoveResult) {
	*out = MoveResult{NN: s.nn, Window: s.win, Seq: s.seq.Load()}
}

// coversLocked reports whether the armed answer is still exact at p
// (s.mu held). The NN half-plane test is bounded to the universe: the
// armed region polygon is universe-clipped, and so is the puncture
// test mutations run against it, so the two must agree.
func (s *Session) coversLocked(p geom.Point) bool {
	switch s.kind {
	case NN:
		if s.usesINSQ() {
			// Covers is exact everywhere by pure distance arithmetic —
			// no universe clipping involved on either side of the
			// arm/puncture protocol, so no universe bound is needed.
			return s.ins != nil && s.ins.Covers(p)
		}
		return s.nn != nil && s.m.universe.Contains(p) && s.nn.Valid(p)
	case Window:
		return s.win != nil && s.win.Valid(p)
	}
	return false
}

// adoptLocked installs a fresh answer and re-arms the region index
// with it (s.mu held). The region is armed only when no mutation
// landed since epoch0 — otherwise it may already be punctured, and the
// session conservatively stays invalid (every Move re-queries) until a
// quiet re-execution succeeds.
func (s *Session) adoptLocked(v *core.NNValidity, wv *core.WindowValidity, epoch0 uint64) {
	if a := s.armed.Swap(nil); a != nil {
		s.m.idx.disarm(a)
	}
	s.nn, s.win = v, wv
	s.pf = nil
	if s.closed.Load() || s.m.epoch.Load() != epoch0 {
		s.insqPoisonLocked()
		s.invalid.Store(true)
		return
	}
	a := buildArmed(s, v, wv)
	if a == nil {
		s.insqPoisonLocked()
		s.invalid.Store(true)
		return
	}
	s.m.idx.arm(a)
	s.armed.Store(a)
	s.invalid.Store(false)
	// A mutation may have slipped between the epoch check and the arm:
	// its puncture scan could have missed the entry, so re-check and
	// conservatively invalidate. (If the scan did see the entry this
	// double-invalidates, which is harmless.)
	if s.m.epoch.Load() != epoch0 {
		s.insqPoisonLocked()
		s.m.invalidate(s)
	}
}

// insqPoisonLocked discards the influential set when its pending log
// can no longer be proven complete (s.mu held): Insert/Delete
// notifications are logged only while an armed entry is published, so
// whenever a mutation may have landed across an unarmed window, a
// retained set could later be repaired into a stale answer. Dropping
// it forces the next slow path into a full rebuild. No-op for other
// strategies and kinds.
func (s *Session) insqPoisonLocked() {
	if s.usesINSQ() {
		s.ins = nil
		s.log.clear()
	}
}

// touch records client activity for the idle TTL.
func (s *Session) touch() { s.active.Store(time.Now().UnixNano()) }

// broadcast wakes every long-poller waiting on the session.
func (s *Session) broadcast() {
	s.notifyMu.Lock()
	close(s.notifyCh)
	s.notifyCh = make(chan struct{})
	s.notifyMu.Unlock()
}

func (s *Session) waitCh() <-chan struct{} {
	s.notifyMu.Lock()
	ch := s.notifyCh
	s.notifyMu.Unlock()
	return ch
}

// invalidate marks the session's armed region punctured and notifies
// long-pollers.
func (m *Manager) invalidate(s *Session) {
	s.seq.Add(1)
	if !s.invalid.Swap(true) {
		m.met.invalidations.Inc()
	}
	s.broadcast()
}

// Events blocks until the session has been invalidated more than
// `since` times (returning the new sequence number and true), or until
// ctx is done (returning the current sequence number and false — the
// long-poll timed out with nothing to report). A closed or expired
// session returns ErrExpired.
func (m *Manager) Events(ctx context.Context, id uint64, since uint64) (uint64, bool, error) {
	s, err := m.lookup(id)
	if err != nil {
		return 0, false, err
	}
	s.touch()
	for {
		if cur := s.seq.Load(); cur > since {
			return cur, true, nil
		}
		if s.closed.Load() {
			return s.seq.Load(), false, ErrExpired
		}
		ch := s.waitCh()
		// Re-check after capturing the channel: an invalidation between
		// the load and the capture would otherwise be missed.
		if cur := s.seq.Load(); cur > since {
			return cur, true, nil
		}
		select {
		case <-ctx.Done():
			return s.seq.Load(), false, nil
		case <-ch:
		}
	}
}

// MutationBegin must be called before every Insert/Delete mutates the
// index: the leading epoch bump makes concurrent region computations
// un-armable, exactly like the validity cache's double-bump discipline.
func (m *Manager) MutationBegin() { m.epoch.Add(1) }

// OnInsert must be called after an Insert is visible in the index: it
// bumps the epoch and invalidates every session whose armed region the
// new point punctures. The candidate set comes from the region index —
// only sessions whose influence rectangle covers the point are tested.
func (m *Manager) OnInsert(it rtree.Item) {
	m.epoch.Add(1)
	for _, a := range m.idx.collect(it.P) {
		if a.insq {
			// INSQ: an insert strictly inside the guard joins the
			// influential set — log it for the next repair and
			// invalidate (it may displace a member somewhere in the
			// region). At or beyond the guard it is provably harmless.
			if it.P.Dist(a.insAnchor) < a.insGuard {
				a.s.log.append(insqMut{it: it})
				m.invalidate(a.s)
			}
			continue
		}
		if a.puncturedByInsert(it.P) {
			m.invalidate(a.s)
		}
	}
}

// OnDelete must be called after a Delete is visible in the index: a
// deletion invalidates exactly the sessions whose cached result
// contains the removed item. Removing a non-member only ever grows
// validity regions, so cached regions stay correct (conservative).
func (m *Manager) OnDelete(it rtree.Item) {
	m.epoch.Add(1)
	for _, a := range m.idx.collect(it.P) {
		if a.insq {
			// INSQ: any in-set delete must reach the next repair (≤
			// catches a set element sitting exactly at the guard), but
			// only a member delete changes the served answer — ghosts
			// of non-member deletes merely keep Covers conservative.
			if it.P.Dist(a.insAnchor) <= a.insGuard {
				a.s.log.append(insqMut{del: true, it: it})
				if a.holdsMember(it.ID) {
					m.invalidate(a.s)
				}
			}
			continue
		}
		if a.holdsMember(it.ID) {
			m.invalidate(a.s)
		}
	}
}
