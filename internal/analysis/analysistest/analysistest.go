// Package analysistest runs one analyzer over small fixture packages
// and checks its diagnostics against expectations written in the
// fixtures themselves — a dependency-free analogue of
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixture packages live under testdata/src/<pkg>/. An expectation is a
// comment on the flagged line:
//
//	db.Query() // want `result of DB\.Query is discarded`
//
// Each string after "want" (backquoted or double-quoted) is a regular
// expression that must match the message of one diagnostic reported on
// that line. Lines without a want comment must produce no diagnostics,
// so fixtures double as negative tests (including //lbsq:nocheck
// suppressions, which are applied exactly as in the vet driver).
//
// Imports inside fixtures resolve first against sibling fixture
// packages in testdata/src (so mocks like a fake obs.Registry can be
// shared), then against the standard library via the source importer.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"lbsq/internal/analysis"
)

// TestData returns the absolute path of the calling package's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads each named fixture package from testdata/src, applies the
// analyzer, and reports mismatches between diagnostics and the // want
// expectations as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	RunAll(t, testdata, []*analysis.Analyzer{a}, pkgs...)
}

// RunAll is Run for a set of analyzers sharing one diagnostic stream —
// needed by suppression-audit fixtures, where the audited analyzer must
// run alongside nocheckaudit so suppression usage is observable.
//
// Facts cross fixture package boundaries exactly as under go vet: when
// the target package imports sibling fixture packages, the (non-audit)
// analyzers first run over those dependencies facts-only, and the
// resulting summaries are fed into the target's analysis. Dependency
// fixtures contribute facts, not diagnostics; only the target package's
// want comments are checked.
func RunAll(t *testing.T, testdata string, analyzers []*analysis.Analyzer, pkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		fset: fset,
		src:  filepath.Join(testdata, "src"),
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*loadedPkg),
	}
	for _, p := range pkgs {
		p := p
		t.Run(p, func(t *testing.T) {
			runPkg(t, imp, analyzers, p)
		})
	}
}

func runPkg(t *testing.T, imp *fixtureImporter, analyzers []*analysis.Analyzer, path string) {
	t.Helper()
	l, err := imp.load(path)
	if err != nil {
		t.Fatalf("loading fixture package %s: %v", path, err)
	}
	facts := depFacts(t, imp, analyzers, path)
	diags, _, err := analysis.RunUnit(analysis.Unit{
		Fset:      imp.fset,
		Files:     l.files,
		Pkg:       l.pkg,
		TypesInfo: l.info,
		Imported:  facts,
	}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	expects := collectExpectations(t, imp.fset, l.files)

	for _, d := range diags {
		pos := imp.fset.Position(d.Pos)
		if e := matchExpectation(expects, pos, d.Message); e != nil {
			e.matched = true
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re.String())
		}
	}
}

// depFacts runs the non-audit analyzers facts-only over every fixture
// package loaded before the target — imports load before importers, so
// iterating in load order mirrors go vet's dependency scheduling — and
// returns the accumulated transitive facts.
func depFacts(t *testing.T, imp *fixtureImporter, analyzers []*analysis.Analyzer, target string) analysis.PackageFacts {
	t.Helper()
	var factOnly []*analysis.Analyzer
	for _, a := range analyzers {
		if !a.AuditSuppressions {
			factOnly = append(factOnly, a)
		}
	}
	facts := make(analysis.PackageFacts)
	for _, path := range imp.order {
		if path == target {
			continue
		}
		dep := imp.pkgs[path]
		if dep == nil || dep.files == nil { // std package: no fixture source
			continue
		}
		_, exported, err := analysis.RunUnit(analysis.Unit{
			Fset:      imp.fset,
			Files:     dep.files,
			Pkg:       dep.pkg,
			TypesInfo: dep.info,
			Imported:  facts,
		}, factOnly)
		if err != nil {
			t.Fatalf("computing facts for fixture dependency %s: %v", path, err)
		}
		if len(exported) > 0 {
			facts[path] = exported
		}
	}
	return facts
}

// An expectation is one "// want" regexp at a file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func matchExpectation(expects []*expectation, pos token.Position, msg string) *expectation {
	for _, e := range expects {
		if !e.matched && e.file == pos.Filename && e.line == pos.Line && e.re.MatchString(msg) {
			return e
		}
	}
	return nil
}

// wantArg matches one backquoted or double-quoted string.
var wantArg = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectExpectations(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Block form `/* want ... */` lets an expectation share a
				// line with a // comment under audit (two // comments
				// cannot coexist on one line).
				text := c.Text
				if strings.HasPrefix(text, "/*") {
					text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
				} else {
					text = strings.TrimPrefix(text, "//")
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") && !strings.HasPrefix(text, "want\t") {
					continue
				}
				pos := fset.Position(c.Pos())
				args := wantArg.FindAllString(text[len("want"):], -1)
				if len(args) == 0 {
					t.Errorf("%s: malformed want comment (no quoted regexp): %s", pos, c.Text)
					continue
				}
				for _, arg := range args {
					pat := arg
					if pat[0] == '`' {
						pat = pat[1 : len(pat)-1]
					} else if unq, err := strconv.Unquote(pat); err == nil {
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// fixtureImporter resolves imports against testdata/src first, then the
// standard library (compiled from source, so no export data is needed).
type fixtureImporter struct {
	fset *token.FileSet
	src  string
	std  types.Importer
	pkgs map[string]*loadedPkg
	// order records fixture load order; a package's imports are loaded
	// (and hence appended) before the package itself, giving a
	// topological order for the fact passes in depFacts.
	order []string
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	l, err := im.load(path)
	if err != nil {
		return nil, err
	}
	return l.pkg, nil
}

func (im *fixtureImporter) load(path string) (*loadedPkg, error) {
	if l, ok := im.pkgs[path]; ok {
		return l, nil
	}
	dir := filepath.Join(im.src, path)
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		pkg, err := im.std.Import(path)
		if err != nil {
			return nil, err
		}
		l := &loadedPkg{pkg: pkg}
		im.pkgs[path] = l
		return l, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := analysis.NewTypesInfo()
	cfg := &types.Config{Importer: im}
	pkg, err := cfg.Check(path, im.fset, files, info)
	if err != nil {
		return nil, err
	}
	l := &loadedPkg{pkg: pkg, files: files, info: info}
	im.pkgs[path] = l
	im.order = append(im.order, path)
	return l, nil
}
