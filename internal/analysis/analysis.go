// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary, sufficient to host the
// project-specific analyzers behind `go vet -vettool=` (see the
// unitchecker protocol in unitchecker.go) without importing anything
// outside the standard library.
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics. Analyzers are purely local (no cross-package facts), so
// dependency packages are processed in constant time.
//
// Findings can be suppressed per line with a comment of the form
//
//	//lbsq:nocheck floatcmp
//	//lbsq:nocheck floatcmp,droppederr
//	//lbsq:nocheck
//
// placed on the flagged line or alone on the line directly above it.
// The bare form suppresses every analyzer; use it sparingly.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis: its name, documentation, and the
// function that runs it on a single package.
type Analyzer struct {
	// Name is the analyzer's command-line and suppression name
	// (lower-case identifier).
	Name string
	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string
	// Run inspects the package described by pass and reports findings
	// via pass.Report / pass.Reportf.
	Run func(*Pass) error
}

// A Pass provides one analyzer with the parsed and type-checked
// package under analysis.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Report emits one diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits one diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is the reporting analyzer's name; filled by the driver.
	Analyzer string
}

// NewTypesInfo returns a types.Info with every map populated, as
// analyzers expect.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Run executes the analyzers over one type-checked package and returns
// the surviving diagnostics (suppression comments applied), sorted by
// position.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup := collectSuppressions(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			report: func(d Diagnostic) {
				d.Analyzer = a.Name
				if !sup.suppresses(fset.Position(d.Pos), a.Name) {
					out = append(out, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// suppressions maps file -> line -> analyzer names (empty set value
// means "all analyzers") for //lbsq:nocheck comments.
type suppressions map[string]map[int]map[string]bool

const nocheckPrefix = "//lbsq:nocheck"

func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := make(suppressions)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, nocheckPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, nocheckPrefix))
				names := make(map[string]bool)
				for _, n := range strings.Split(rest, ",") {
					if n = strings.TrimSpace(n); n != "" {
						names[n] = true
					}
				}
				pos := fset.Position(c.Pos())
				lines := sup[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					sup[pos.Filename] = lines
				}
				// The comment applies to its own line and — so it can sit
				// above a long expression — to the following line.
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					if lines[ln] == nil {
						lines[ln] = make(map[string]bool)
					}
					for n := range names {
						lines[ln][n] = true
					}
					if len(names) == 0 {
						lines[ln]["*"] = true
					}
				}
			}
		}
	}
	return sup
}

func (s suppressions) suppresses(pos token.Position, analyzer string) bool {
	names := s[pos.Filename][pos.Line]
	return names != nil && (names["*"] || names[analyzer])
}
