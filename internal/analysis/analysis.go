// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary, sufficient to host the
// project-specific analyzers behind `go vet -vettool=` (see the
// unitchecker protocol in unitchecker.go) without importing anything
// outside the standard library.
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics. Analyzers may additionally export facts — serialized
// per-object or per-package summaries — which the driver writes to the
// unit's vetx file and feeds back to the analysis of every dependent
// package, so analyzers can reason about transitive callees across
// package boundaries (the role facts play in x/tools' unitchecker).
//
// Findings can be suppressed per line with a comment of the form
//
//	//lbsq:nocheck floatcmp
//	//lbsq:nocheck floatcmp,droppederr
//	//lbsq:nocheck
//
// placed on the flagged line or alone on the line directly above it.
// The bare form suppresses every analyzer; use it sparingly. The driver
// records which suppressions actually matched a diagnostic, so an
// auditing analyzer (Analyzer.AuditSuppressions) can flag the stale
// ones.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis: its name, documentation, and the
// function that runs it on a single package.
type Analyzer struct {
	// Name is the analyzer's command-line and suppression name
	// (lower-case identifier).
	Name string
	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string
	// Run inspects the package described by pass and reports findings
	// via pass.Report / pass.Reportf.
	Run func(*Pass) error
	// AuditSuppressions marks an analyzer that inspects the unit's
	// //lbsq:nocheck comments rather than its code. The driver runs it
	// after every other analyzer, so Pass.Suppressions reflects which
	// comments actually matched a diagnostic.
	AuditSuppressions bool
}

// Facts holds one package's exported facts: analyzer name → object key
// (ObjectKey; "" is the package-level fact) → serialized fact.
type Facts map[string]map[string]json.RawMessage

// PackageFacts maps package import paths to their exported Facts. The
// driver hands each unit the transitive facts of its dependencies.
type PackageFacts map[string]Facts

// ObjectKey returns the stable cross-package key of an object. For
// functions and methods it is types.Func.FullName (e.g.
// "(*lbsq/internal/wal.Log).Append"); other objects use
// "pkgpath.Name".
func ObjectKey(obj types.Object) string {
	if f, ok := obj.(*types.Func); ok {
		return f.FullName()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// A Pass provides one analyzer with the parsed and type-checked
// package under analysis, plus the fact store.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report     func(Diagnostic)
	imported   PackageFacts
	exported   Facts
	sup        *suppressions
	active     []string
	registered []string
}

// Report emits one diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits one diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportObjectFact records a fact about obj (which must belong to the
// package under analysis), visible to later ImportObjectFact calls in
// this unit and — through the vetx file — to dependent packages.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) error {
	return p.export(ObjectKey(obj), fact)
}

// ExportPackageFact records a fact about the package as a whole.
func (p *Pass) ExportPackageFact(fact any) error {
	return p.export("", fact)
}

func (p *Pass) export(key string, fact any) error {
	data, err := json.Marshal(fact)
	if err != nil {
		return fmt.Errorf("%s: marshaling fact for %q: %v", p.Analyzer.Name, key, err)
	}
	m := p.exported[p.Analyzer.Name]
	if m == nil {
		m = make(map[string]json.RawMessage)
		p.exported[p.Analyzer.Name] = m
	}
	m[key] = data
	return nil
}

// ImportObjectFact loads this analyzer's fact about obj into dst,
// reporting whether one exists. Facts about objects of the package
// under analysis come from this unit's exports; facts about imported
// objects come from the dependency's vetx summary.
func (p *Pass) ImportObjectFact(obj types.Object, dst any) bool {
	if obj == nil {
		return false
	}
	return p.importFact(packagePathOf(obj, p.Pkg), ObjectKey(obj), dst)
}

// ImportPackageFact loads this analyzer's package-level fact of the
// package with the given import path into dst.
func (p *Pass) ImportPackageFact(path string, dst any) bool {
	return p.importFact(path, "", dst)
}

// AllPackageFacts returns every package-level fact of this analyzer
// visible to the unit — those of all transitive dependencies, plus its
// own if already exported — keyed by package path.
func (p *Pass) AllPackageFacts() map[string]json.RawMessage {
	out := make(map[string]json.RawMessage)
	for path, facts := range p.imported {
		if raw, ok := facts[p.Analyzer.Name][""]; ok {
			out[path] = raw
		}
	}
	if raw, ok := p.exported[p.Analyzer.Name][""]; ok {
		out[p.Pkg.Path()] = raw
	}
	return out
}

func (p *Pass) importFact(path, key string, dst any) bool {
	var raw json.RawMessage
	var ok bool
	if path == p.Pkg.Path() {
		raw, ok = p.exported[p.Analyzer.Name][key]
	} else {
		raw, ok = p.imported[path][p.Analyzer.Name][key]
	}
	if !ok {
		return false
	}
	return json.Unmarshal(raw, dst) == nil
}

func packagePathOf(obj types.Object, cur *types.Package) string {
	if obj.Pkg() != nil {
		return obj.Pkg().Path()
	}
	return cur.Path()
}

// ActiveAnalyzers returns the names of the analyzers running in this
// unit (suppression names for these can be judged live or stale).
func (p *Pass) ActiveAnalyzers() []string { return p.active }

// RegisteredAnalyzers returns every analyzer name the driver knows,
// including ones disabled by flags (suppression names for those are
// skipped by audits, not reported as unknown).
func (p *Pass) RegisteredAnalyzers() []string { return p.registered }

// A Suppression describes one //lbsq:nocheck comment and which
// analyzer names it actually suppressed during this unit's analysis.
// Available to AuditSuppressions analyzers via Pass.Suppressions.
type Suppression struct {
	// Pos is the comment's position.
	Pos token.Pos
	// Names are the analyzer names the comment lists (nil for the bare
	// form, which suppresses everything).
	Names []string
	// Used records the analyzer names whose diagnostics the comment
	// suppressed in this unit.
	Used map[string]bool
}

// Suppressions returns the unit's //lbsq:nocheck comments with their
// usage, in source order. Only meaningful for AuditSuppressions
// analyzers, which the driver runs after every other analyzer.
func (p *Pass) Suppressions() []*Suppression {
	if p.sup == nil {
		return nil
	}
	out := make([]*Suppression, 0, len(p.sup.entries))
	for _, e := range p.sup.entries {
		out = append(out, &Suppression{Pos: e.pos, Names: e.names, Used: e.used})
	}
	return out
}

// A Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is the reporting analyzer's name; filled by the driver.
	Analyzer string
}

// NewTypesInfo returns a types.Info with every map populated, as
// analyzers expect.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// A Unit bundles one type-checked package with its dependency facts
// for RunUnit.
type Unit struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Imported holds the transitive facts of the unit's dependencies
	// (nil when none are available).
	Imported PackageFacts
	// Registered lists every analyzer name the driver knows, including
	// disabled ones; nil defaults to the analyzers being run.
	Registered []string
}

// Run executes the analyzers over one type-checked package and returns
// the surviving diagnostics, discarding facts. Kept for callers that
// predate the fact layer.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunUnit(Unit{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, analyzers)
	return diags, err
}

// RunUnit executes the analyzers over one type-checked package and
// returns the surviving diagnostics (suppression comments applied),
// sorted by position, together with the unit's exported facts.
// Auditing analyzers (AuditSuppressions) run after all others so they
// observe complete suppression usage.
func RunUnit(u Unit, analyzers []*Analyzer) ([]Diagnostic, Facts, error) {
	sup := collectSuppressions(u.Fset, u.Files)
	exported := make(Facts)
	active := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		active = append(active, a.Name)
	}
	registered := u.Registered
	if registered == nil {
		registered = active
	}

	var ordered []*Analyzer
	for _, a := range analyzers {
		if !a.AuditSuppressions {
			ordered = append(ordered, a)
		}
	}
	for _, a := range analyzers {
		if a.AuditSuppressions {
			ordered = append(ordered, a)
		}
	}

	var out []Diagnostic
	for _, a := range ordered {
		a := a
		pass := &Pass{
			Analyzer:   a,
			Fset:       u.Fset,
			Files:      u.Files,
			Pkg:        u.Pkg,
			TypesInfo:  u.TypesInfo,
			imported:   u.Imported,
			exported:   exported,
			sup:        sup,
			active:     active,
			registered: registered,
			report: func(d Diagnostic) {
				d.Analyzer = a.Name
				// An audit finding is reported at the suppression
				// comment itself, so only a comment naming the audit
				// analyzer explicitly may silence it — otherwise a bare
				// //lbsq:nocheck would hide its own staleness.
				if !sup.suppresses(u.Fset.Position(d.Pos), a.Name, a.AuditSuppressions) {
					out = append(out, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := u.Fset.Position(out[i].Pos), u.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, exported, nil
}

// supEntry is one //lbsq:nocheck comment; used tracks the analyzers it
// suppressed.
type supEntry struct {
	pos   token.Pos
	names []string // nil = bare form (all analyzers)
	used  map[string]bool
}

func (e *supEntry) covers(analyzer string, explicitOnly bool) bool {
	if len(e.names) == 0 {
		return !explicitOnly
	}
	for _, n := range e.names {
		if n == analyzer {
			return true
		}
	}
	return false
}

// suppressions indexes //lbsq:nocheck comments by file and line; each
// comment covers its own line and the following one.
type suppressions struct {
	entries []*supEntry
	byLine  map[string]map[int][]*supEntry
}

const nocheckPrefix = "//lbsq:nocheck"

func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	sup := &suppressions{byLine: make(map[string]map[int][]*supEntry)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, nocheckPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, nocheckPrefix))
				// Everything after "—" or "--" is justification prose.
				if i := strings.IndexAny(rest, "—"); i >= 0 {
					rest = strings.TrimSpace(rest[:i])
				}
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = strings.TrimSpace(rest[:i])
				}
				var names []string
				for _, n := range strings.Split(rest, ",") {
					if n = strings.TrimSpace(n); n != "" {
						names = append(names, n)
					}
				}
				e := &supEntry{pos: c.Pos(), names: names, used: make(map[string]bool)}
				sup.entries = append(sup.entries, e)
				pos := fset.Position(c.Pos())
				lines := sup.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*supEntry)
					sup.byLine[pos.Filename] = lines
				}
				// The comment applies to its own line and — so it can sit
				// above a long expression — to the following line.
				lines[pos.Line] = append(lines[pos.Line], e)
				lines[pos.Line+1] = append(lines[pos.Line+1], e)
			}
		}
	}
	return sup
}

func (s *suppressions) suppresses(pos token.Position, analyzer string, explicitOnly bool) bool {
	hit := false
	for _, e := range s.byLine[pos.Filename][pos.Line] {
		if e.covers(analyzer, explicitOnly) {
			e.used[analyzer] = true
			hit = true
		}
	}
	return hit
}
