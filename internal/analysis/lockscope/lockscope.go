// Package lockscope defines an analyzer that keeps blocking operations
// out of critical sections.
//
// The WAL ordering discipline (PR 7) is that fsync happens outside the
// DB write lock; the distribution layer's discipline (PRs 5–6) is that
// shard RPCs never run under a region-index shard lock. Both are
// invisible to the compiler. lockscope computes a "blocking" fact for
// every function — it sleeps, performs file or network I/O, or
// operates on channels, directly or through any transitive callee —
// and reports calls to blocking functions (and intrinsic channel
// operations) made while a sync.Mutex or sync.RWMutex is held.
//
// Facts cross package boundaries through the driver's vetx exchange,
// so a storage-layer helper that grows an fsync is flagged at every
// locked call site in lbsq proper on the next `make vet`. Standard-
// library packages are not analyzed; their blocking entry points are a
// curated list (file I/O, net/http round trips, time.Sleep,
// WaitGroup/Cond waits). Lock-granularity blocking — calling a
// function that briefly takes another mutex — is deliberately not
// "blocking" here; lockorder owns lock-vs-lock concerns.
//
// A select with a default case never blocks and is exempt. Where
// holding the lock across a blocking call is the design (WAL append
// order under the write lock, per-session serialization), annotate the
// call line — or the line above it — with
//
//	//lbsq:allowblock — <justification>
//
// which is lockscope's own escape hatch and is not subject to
// nocheckaudit.
package lockscope

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lbsq/internal/analysis"
	"lbsq/internal/analysis/lockutil"
)

// Analyzer is the lockscope analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockscope",
	Doc:  "no blocking calls (fsync, file/network I/O, channel ops, sleeps) inside sync.Mutex/RWMutex critical sections; blocking-ness propagates through transitive callees via facts",
	Run:  run,
}

// blockingFact marks a function that may block; exported per function
// so dependent packages see it.
type blockingFact struct {
	Why string // human-readable immediate reason
}

// blockingPrimitives maps types.Func.FullName of standard-library
// entry points to why they block. The standard library is never
// analyzed for facts, so this curated list is the fact base of the
// transitive closure. Plain io.Reader/io.Writer calls are deliberately
// absent: through an interface the target is unresolvable anyway, and
// flagging every buffered write would be noise — the os.File and net
// layers below them are what actually block.
var blockingPrimitives = map[string]string{
	"time.Sleep": "sleeps",

	"os.Open":       "opens a file",
	"os.OpenFile":   "opens a file",
	"os.Create":     "creates a file",
	"os.CreateTemp": "creates a file",
	"os.ReadFile":   "reads a file",
	"os.WriteFile":  "writes a file",
	"os.ReadDir":    "reads a directory",
	"os.Remove":     "touches the filesystem",
	"os.RemoveAll":  "touches the filesystem",
	"os.Rename":     "touches the filesystem",
	"os.Mkdir":      "touches the filesystem",
	"os.MkdirAll":   "touches the filesystem",
	"os.MkdirTemp":  "touches the filesystem",
	"os.Stat":       "touches the filesystem",
	"os.Truncate":   "touches the filesystem",

	"(*os.File).Read":        "reads a file",
	"(*os.File).ReadAt":      "reads a file",
	"(*os.File).Write":       "writes a file",
	"(*os.File).WriteAt":     "writes a file",
	"(*os.File).WriteString": "writes a file",
	"(*os.File).Seek":        "seeks a file",
	"(*os.File).Sync":        "fsyncs",
	"(*os.File).Truncate":    "truncates a file",
	"(*os.File).Close":       "closes a file",

	"net/http.Get":      "performs an HTTP round trip",
	"net/http.Head":     "performs an HTTP round trip",
	"net/http.Post":     "performs an HTTP round trip",
	"net/http.PostForm": "performs an HTTP round trip",

	"(*net/http.Client).Do":           "performs an HTTP round trip",
	"(*net/http.Client).Get":          "performs an HTTP round trip",
	"(*net/http.Client).Head":         "performs an HTTP round trip",
	"(*net/http.Client).Post":         "performs an HTTP round trip",
	"(*net/http.Client).PostForm":     "performs an HTTP round trip",
	"(*net/http.Transport).RoundTrip": "performs an HTTP round trip",

	"net.Dial":        "dials the network",
	"net.DialTimeout": "dials the network",
	"net.Listen":      "listens on the network",

	"(*sync.WaitGroup).Wait": "waits on a WaitGroup",
	"(*sync.Cond).Wait":      "waits on a Cond",
}

// fnInfo is the per-function state of the local fixpoint.
type fnInfo struct {
	decl     *ast.FuncDecl
	obj      *types.Func
	blocking bool
	why      string
	// calls are the statically resolved callees (any package).
	calls []*types.Func
}

func run(pass *analysis.Pass) error {
	allow := collectAllows(pass)

	// Pass 1: immediate blocking-ness and the local call graph.
	var fns []*fnInfo
	byObj := make(map[*types.Func]*fnInfo)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &fnInfo{decl: fd, obj: obj}
			lockutil.Walk(pass.TypesInfo, fd.Name.Name, fd.Body, lockutil.Hooks{
				Blocking: func(pos token.Pos, what string) {
					if !fi.blocking {
						fi.blocking, fi.why = true, what
					}
				},
				Call: func(call *ast.CallExpr, pos token.Pos) {
					callee := lockutil.Callee(pass.TypesInfo, call)
					if callee == nil {
						return
					}
					if why, ok := blockingPrimitives[callee.FullName()]; ok {
						if !fi.blocking {
							fi.blocking, fi.why = true, why
						}
						return
					}
					fi.calls = append(fi.calls, callee)
				},
			})
			fns = append(fns, fi)
			byObj[obj] = fi
		}
	}

	// Pass 2: transitive closure — local fixpoint plus imported facts.
	blocksVia := func(callee *types.Func) (string, bool) {
		if fi, ok := byObj[callee]; ok {
			if fi.blocking {
				return fi.why, true
			}
			return "", false
		}
		var bf blockingFact
		if pass.ImportObjectFact(callee, &bf) {
			return bf.Why, true
		}
		return "", false
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			if fi.blocking {
				continue
			}
			for _, callee := range fi.calls {
				if why, ok := blocksVia(callee); ok {
					fi.blocking = true
					fi.why = "calls " + shortName(callee) + ", which " + why
					changed = true
					break
				}
			}
		}
	}
	for _, fi := range fns {
		if fi.blocking {
			if err := pass.ExportObjectFact(fi.obj, blockingFact{Why: fi.why}); err != nil {
				return err
			}
		}
	}

	// Pass 3: critical-section walk with diagnostics.
	for _, fi := range fns {
		fi := fi
		var held []string // lock classes currently held, acquisition order
		heldDesc := func() string {
			last := held[len(held)-1]
			if last == "" {
				return "a mutex"
			}
			return last
		}
		report := func(pos token.Pos, msg string) {
			if allow.allows(pass.Fset.Position(pos)) {
				return
			}
			pass.Reportf(pos, "%s; move it outside the lock or annotate with //lbsq:allowblock", msg)
		}
		lockutil.Walk(pass.TypesInfo, fi.decl.Name.Name, fi.decl.Body, lockutil.Hooks{
			Acquire: func(class string, read bool, pos token.Pos) {
				held = append(held, class)
			},
			Release: func(class string, read bool) {
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == class {
						held = append(held[:i], held[i+1:]...)
						return
					}
				}
				if class == "" && len(held) > 0 {
					held = held[:len(held)-1]
				}
			},
			Blocking: func(pos token.Pos, what string) {
				if len(held) > 0 {
					report(pos, what+" inside critical section ("+heldDesc()+" held)")
				}
			},
			Call: func(call *ast.CallExpr, pos token.Pos) {
				if len(held) == 0 {
					return
				}
				callee := lockutil.Callee(pass.TypesInfo, call)
				if callee == nil {
					return
				}
				why, blocking := "", false
				if w, ok := blockingPrimitives[callee.FullName()]; ok {
					why, blocking = w, true
				} else if w, ok := blocksVia(callee); ok {
					why, blocking = w, true
				}
				if blocking {
					report(pos, "call to "+shortName(callee)+" may block ("+why+") while "+heldDesc()+" is held")
				}
			},
		})
	}
	return nil
}

// shortName renders a callee compactly: pkgname.Func or
// (*pkgname.Type).Method.
func shortName(fn *types.Func) string {
	full := fn.FullName()
	// Trim import-path directories, keeping the final package element:
	// "(*lbsq/internal/wal.Log).Append" → "(*wal.Log).Append".
	if i := strings.LastIndex(full, "/"); i >= 0 {
		for j := i; j >= 0; j-- {
			if full[j] == '(' || full[j] == '*' {
				return full[:j+1] + full[i+1:]
			}
		}
		return full[i+1:]
	}
	return full
}

const allowPrefix = "//lbsq:allowblock"

// allowTable indexes //lbsq:allowblock comments by file and line; like
// nocheck comments they cover their own line and the next.
type allowTable map[string]map[int]bool

func (t allowTable) allows(pos token.Position) bool { return t[pos.Filename][pos.Line] }

func collectAllows(pass *analysis.Pass) allowTable {
	t := make(allowTable)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(strings.TrimSpace(c.Text), allowPrefix) {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				lines := t[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					t[pos.Filename] = lines
				}
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
	return t
}
