package lockscope_test

import (
	"testing"

	"lbsq/internal/analysis/analysistest"
	"lbsq/internal/analysis/lockscope"
)

func TestLockScope(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockscope.Analyzer, "a", "uses")
}
