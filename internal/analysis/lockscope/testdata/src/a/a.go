// Fixture for the lockscope analyzer: blocking operations inside
// sync.Mutex/RWMutex critical sections.
package a

import (
	"os"
	"sync"
	"time"
)

type Store struct {
	mu sync.Mutex
	f  *os.File
	n  int
}

// CommitBad is the seeded fsync-under-lock mutation from the WAL
// ordering discipline: sync must happen after the write lock drops.
func (s *Store) CommitBad() {
	s.mu.Lock()
	s.f.Sync() // want `call to \(\*os\.File\)\.Sync may block \(fsyncs\) while a\.Store\.mu is held`
	s.mu.Unlock()
}

// CommitGood syncs after releasing the lock.
func (s *Store) CommitGood() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.f.Sync()
}

// Flush documents an intentional sync-under-lock via allowblock.
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.f.Sync() //lbsq:allowblock — fixture: commit ordering requires sync under the lock
}

func (s *Store) sleepy() {
	time.Sleep(time.Millisecond)
}

// Tick blocks transitively: sleepy sleeps, and the lock is held by a
// deferred unlock until return.
func (s *Store) Tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sleepy() // want `call to \(\*a\.Store\)\.sleepy may block \(sleeps\) while a\.Store\.mu is held`
}

// Notify sends on a channel while holding the lock, then again safely
// after releasing it.
func (s *Store) Notify(ch chan int) {
	s.mu.Lock()
	ch <- 1 // want `channel send inside critical section \(a\.Store\.mu held\)`
	s.mu.Unlock()
	ch <- 2
}

// TryNotify uses a select with default: non-blocking, exempt.
func (s *Store) TryNotify(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

// Wait blocks on a select with no default.
func (s *Store) Wait(ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select without default inside critical section \(a\.Store\.mu held\)`
	case v := <-ch:
		return v
	}
}

// Spawn starts a goroutine under the lock; the goroutine body does not
// run under the caller's critical section.
func (s *Store) Spawn(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { ch <- 1 }()
}

type Index struct {
	mu sync.RWMutex
}

// Snapshot performs file I/O under a read lock: readers block writers.
func (ix *Index) Snapshot() {
	ix.mu.RLock()
	os.ReadFile("x") // want `call to os\.ReadFile may block \(reads a file\) while a\.Index\.mu is held`
	ix.mu.RUnlock()
}
