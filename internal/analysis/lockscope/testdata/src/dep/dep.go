// Dependency fixture: exports a blocking fact for Flush, consumed by
// the uses package across the package boundary.
package dep

import "os"

type Sink struct{ f *os.File }

// Flush fsyncs, so it carries a blocking fact.
func (s *Sink) Flush() error { return s.f.Sync() }

// Peek is pure and carries no fact.
func (s *Sink) Peek() int { return 0 }
