// Two-package fixture: the blocking fact of dep.(*Sink).Flush crosses
// the package boundary and is reported at this locked call site.
package uses

import (
	"dep"
	"sync"
)

type Wrap struct {
	mu sync.Mutex
	s  *dep.Sink
}

func (w *Wrap) Commit() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.s.Flush() // want `call to \(\*dep\.Sink\)\.Flush may block \(fsyncs\) while uses\.Wrap\.mu is held`
}

func (w *Wrap) Inspect() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.s.Peek()
}
