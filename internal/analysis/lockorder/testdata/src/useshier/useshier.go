// Two-package fixture: dephier's recorded High → Low edge (package
// fact) plus LockHigh's acquisition set (object fact) make this
// Low-then-High call a cross-package cycle.
package useshier

import "dephier"

func LowHigh() {
	dephier.L.Mu.Lock()
	dephier.LockHigh() // want `mutex acquisition order cycle: dephier\.Low\.Mu → dephier\.High\.Mu → dephier\.Low\.Mu`
	dephier.L.Mu.Unlock()
}
