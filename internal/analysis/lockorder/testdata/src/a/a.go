// Fixture for the lockorder analyzer: mutex acquisition cycles.
package a

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

var av A
var bv B

// ab establishes a.A.mu → a.B.mu; because ba inverts it, this edge
// also closes the cycle seen from its side.
func ab() {
	av.mu.Lock()
	bv.mu.Lock() // want `mutex acquisition order cycle: a\.A\.mu → a\.B\.mu → a\.A\.mu`
	bv.mu.Unlock()
	av.mu.Unlock()
}

// ba inverts ab's ordering.
func ba() {
	bv.mu.Lock()
	av.mu.Lock() // want `mutex acquisition order cycle: a\.B\.mu → a\.A\.mu → a\.B\.mu`
	av.mu.Unlock()
	bv.mu.Unlock()
}

type Cell struct{ mu sync.Mutex }

// move locks two instances of the same class: a self-edge.
func move(src, dst *Cell) {
	src.mu.Lock()
	dst.mu.Lock() // want `acquiring a\.Cell\.mu while an instance of the same class is already held`
	dst.mu.Unlock()
	src.mu.Unlock()
}

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }
type E struct{ mu sync.Mutex }

var cv C
var dv D
var ev E

func lockD() {
	dv.mu.Lock()
	dv.mu.Unlock()
}

// cThenD acquires D through a call while holding C.
func cThenD() {
	cv.mu.Lock()
	lockD() // want `mutex acquisition order cycle: a\.C\.mu → a\.D\.mu → a\.C\.mu`
	cv.mu.Unlock()
}

// dThenC inverts cThenD's call-through ordering.
func dThenC() {
	dv.mu.Lock()
	cv.mu.Lock() // want `mutex acquisition order cycle: a\.D\.mu → a\.C\.mu → a\.D\.mu`
	cv.mu.Unlock()
	dv.mu.Unlock()
}

// ce follows a consistent global order; no report.
func ce() {
	cv.mu.Lock()
	ev.mu.Lock()
	ev.mu.Unlock()
	cv.mu.Unlock()
}
