// Dependency fixture: records the edge dephier.High.mu →
// dephier.Low.mu as a package fact and exports LockHigh's acquisition
// set as an object fact.
package dephier

import "sync"

type Low struct{ Mu sync.Mutex }
type High struct{ Mu sync.Mutex }

var L Low
var H High

// HighLow establishes High before Low — the package's lock hierarchy.
func HighLow() {
	H.Mu.Lock()
	L.Mu.Lock()
	L.Mu.Unlock()
	H.Mu.Unlock()
}

// LockHigh acquires the High lock on behalf of callers.
func LockHigh() {
	H.Mu.Lock()
	H.Mu.Unlock()
}
