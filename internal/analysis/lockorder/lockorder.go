// Package lockorder defines an analyzer that builds the program-wide
// mutex-acquisition graph and reports ordering cycles.
//
// Every mutex receiver is canonicalized to a "lock class" (see
// lockutil.Class): the DB write lock is lbsq.DB.mu, the store mutex is
// lbsq/internal/storage.Store.mu, the session region-index shard locks
// are one class per cell type, and so on. While walking each function,
// acquiring class B with class A already held records the directed
// edge A → B; calling a function whose (transitive) acquisition set
// contains B does the same. Per-function acquisition sets travel as
// object facts and each package's local edges as a package fact, so
// the graph spans package boundaries: the checker of any package sees
// the union of its own edges and every dependency's.
//
// A cycle in the merged graph — including a self-edge, acquiring a
// lock class while an instance of the same class is held — is a
// potential deadlock and is reported at the local edge that closes it.
// Hand-over-hand locking of sibling instances is rare in lbsq; where
// it is intentional, suppress the closing edge with
// //lbsq:nocheck lockorder and a justification.
package lockorder

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"lbsq/internal/analysis"
	"lbsq/internal/analysis/lockutil"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "mutex acquisition edges must form a DAG across packages; cycles (including same-class self-edges) are potential deadlocks",
	Run:  run,
}

// acquiresFact is a function's transitive lock-acquisition set.
type acquiresFact struct {
	Classes []string
}

// edge is one observed acquisition ordering: To was acquired while
// From was held, at position At.
type edge struct {
	From, To string
	At       string
}

// edgesFact is a package's locally observed edges.
type edgesFact struct {
	Edges []edge
}

type fnInfo struct {
	decl *ast.FuncDecl
	obj  *types.Func
	// acquires is the transitive set of lock classes (fixpoint state).
	acquires map[string]bool
	calls    []*types.Func
}

func run(pass *analysis.Pass) error {
	// Pass 1: per-function local acquisitions, call lists, and the
	// package's local edges from direct lock-while-locked nesting.
	var fns []*fnInfo
	byObj := make(map[*types.Func]*fnInfo)
	type localEdge struct {
		from, to string
		pos      token.Pos
	}
	var locals []localEdge
	type pendingCall struct {
		fn     *fnInfo
		callee *types.Func
		held   string
		pos    token.Pos
	}
	var pending []pendingCall

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &fnInfo{decl: fd, obj: obj, acquires: make(map[string]bool)}
			var held []string
			lockutil.Walk(pass.TypesInfo, fd.Name.Name, fd.Body, lockutil.Hooks{
				Acquire: func(class string, read bool, pos token.Pos) {
					if class != "" {
						fi.acquires[class] = true
						if len(held) > 0 && held[len(held)-1] != "" {
							locals = append(locals, localEdge{from: held[len(held)-1], to: class, pos: pos})
						}
					}
					held = append(held, class)
				},
				Release: func(class string, read bool) {
					for i := len(held) - 1; i >= 0; i-- {
						if held[i] == class {
							held = append(held[:i], held[i+1:]...)
							return
						}
					}
					if class == "" && len(held) > 0 {
						held = held[:len(held)-1]
					}
				},
				Call: func(call *ast.CallExpr, pos token.Pos) {
					callee := lockutil.Callee(pass.TypesInfo, call)
					if callee == nil {
						return
					}
					fi.calls = append(fi.calls, callee)
					if len(held) > 0 && held[len(held)-1] != "" {
						pending = append(pending, pendingCall{fn: fi, callee: callee, held: held[len(held)-1], pos: pos})
					}
				},
			})
			fns = append(fns, fi)
			byObj[obj] = fi
		}
	}

	// Pass 2: transitive acquisition sets (local fixpoint + imported
	// object facts), then edges from calls made under a held lock.
	calleeAcquires := func(callee *types.Func) []string {
		if fi, ok := byObj[callee]; ok {
			out := make([]string, 0, len(fi.acquires))
			for c := range fi.acquires {
				out = append(out, c)
			}
			return out
		}
		var af acquiresFact
		if pass.ImportObjectFact(callee, &af) {
			return af.Classes
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			for _, callee := range fi.calls {
				for _, c := range calleeAcquires(callee) {
					if !fi.acquires[c] {
						fi.acquires[c] = true
						changed = true
					}
				}
			}
		}
	}
	for _, pc := range pending {
		for _, c := range calleeAcquires(pc.callee) {
			locals = append(locals, localEdge{from: pc.held, to: c, pos: pc.pos})
		}
	}

	// Export facts: acquisition sets per function, local edges as the
	// package fact (sorted for deterministic vetx bytes).
	for _, fi := range fns {
		if len(fi.acquires) == 0 {
			continue
		}
		classes := make([]string, 0, len(fi.acquires))
		for c := range fi.acquires {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		if err := pass.ExportObjectFact(fi.obj, acquiresFact{Classes: classes}); err != nil {
			return err
		}
	}
	dedup := make(map[string]localEdge)
	for _, e := range locals {
		key := e.from + "\x00" + e.to
		if _, ok := dedup[key]; !ok {
			dedup[key] = e
		}
	}
	var pkgEdges []edge
	for _, e := range dedup {
		pkgEdges = append(pkgEdges, edge{From: e.from, To: e.to, At: pass.Fset.Position(e.pos).String()})
	}
	sort.Slice(pkgEdges, func(i, j int) bool {
		if pkgEdges[i].From != pkgEdges[j].From {
			return pkgEdges[i].From < pkgEdges[j].From
		}
		return pkgEdges[i].To < pkgEdges[j].To
	})
	if len(pkgEdges) > 0 {
		if err := pass.ExportPackageFact(edgesFact{Edges: pkgEdges}); err != nil {
			return err
		}
	}

	// Pass 3: merge every visible package's edges and report each local
	// edge that closes a cycle, at its own position.
	adj := make(map[string]map[string]string) // from → to → where recorded
	addEdge := func(e edge) {
		m := adj[e.From]
		if m == nil {
			m = make(map[string]string)
			adj[e.From] = m
		}
		if _, ok := m[e.To]; !ok {
			m[e.To] = e.At
		}
	}
	for _, raw := range pass.AllPackageFacts() {
		var ef edgesFact
		if json.Unmarshal(raw, &ef) == nil {
			for _, e := range ef.Edges {
				addEdge(e)
			}
		}
	}

	seen := make(map[string]bool) // one report per local from→to pair
	for _, e := range dedup {
		key := e.from + "\x00" + e.to
		if seen[key] {
			continue
		}
		if e.from == e.to {
			seen[key] = true
			pass.Reportf(e.pos, "acquiring %s while an instance of the same class is already held (possible self-deadlock); release first, or annotate intentional hand-over-hand locking with //lbsq:nocheck lockorder", e.to)
			continue
		}
		if path := findPath(adj, e.to, e.from); path != nil {
			seen[key] = true
			cycle := append([]string{e.from}, path...)
			backAt := adj[path[len(path)-2]][e.from]
			pass.Reportf(e.pos, "mutex acquisition order cycle: %s (closing edge %s → %s recorded at %s); acquire these locks in one global order",
				strings.Join(cycle, " → "), path[len(path)-2], e.from, backAt)
		}
	}
	return nil
}

// findPath returns the node path from src to dst through adj (src and
// dst included), or nil if unreachable.
func findPath(adj map[string]map[string]string, src, dst string) []string {
	type frame struct {
		node string
		prev int
	}
	frames := []frame{{node: src, prev: -1}}
	visited := map[string]bool{src: true}
	for i := 0; i < len(frames); i++ {
		cur := frames[i]
		if cur.node == dst {
			var rev []string
			for j := i; j >= 0; j = frames[j].prev {
				rev = append(rev, frames[j].node)
			}
			path := make([]string, 0, len(rev))
			for j := len(rev) - 1; j >= 0; j-- {
				path = append(path, rev[j])
			}
			return path
		}
		next := make([]string, 0, len(adj[cur.node]))
		for to := range adj[cur.node] {
			next = append(next, to)
		}
		sort.Strings(next)
		for _, to := range next {
			if !visited[to] {
				visited[to] = true
				frames = append(frames, frame{node: to, prev: i})
			}
		}
	}
	return nil
}
