package lockorder_test

import (
	"testing"

	"lbsq/internal/analysis/analysistest"
	"lbsq/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockorder.Analyzer, "a", "useshier")
}
