// Fixture for the nocheckaudit analyzer, co-run with floatcmp so
// suppression usage is observable. Expectations about a comment's own
// line use the block form /* want ... */ because two // comments
// cannot share a line.
package a

func f(a, b float64) bool {
	//lbsq:nocheck floatcmp — live: suppresses the comparison below
	live := a == b
	_ = live

	stale := a < b // ordered comparison: floatcmp does not flag it
	_ = stale

	/* want `stale suppression: //lbsq:nocheck floatcmp matched no floatcmp diagnostic` */ //lbsq:nocheck floatcmp
	notFloat := a < b
	_ = notFloat

	/* want `//lbsq:nocheck names unknown analyzer "flaotcmp"` */ //lbsq:nocheck flaotcmp
	typo := a == b                                                // want `raw == comparison of floating-point values`
	_ = typo

	/* want `stale suppression: bare //lbsq:nocheck matched no diagnostic` */ //lbsq:nocheck
	bare := a < b
	_ = bare

	//lbsq:nocheck — bare but live: suppresses the comparison below
	liveBare := a == b
	_ = liveBare

	return a != a
}
