package nocheckaudit_test

import (
	"testing"

	"lbsq/internal/analysis"
	"lbsq/internal/analysis/analysistest"
	"lbsq/internal/analysis/floatcmp"
	"lbsq/internal/analysis/nocheckaudit"
)

func TestNocheckAudit(t *testing.T) {
	analysistest.RunAll(t, analysistest.TestData(t),
		[]*analysis.Analyzer{floatcmp.Analyzer, nocheckaudit.Analyzer}, "a")
}
