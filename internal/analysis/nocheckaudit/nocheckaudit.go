// Package nocheckaudit defines an analyzer that audits the
// //lbsq:nocheck suppression comments themselves.
//
// Suppressions rot: the code they excused gets refactored, the
// analyzer's rule changes, or a name is simply misspelled, and the
// comment silently keeps a hole open in the vet gate. The driver runs
// nocheckaudit after every other analyzer and hands it the unit's
// suppression table with usage bits, so it can report:
//
//   - a suppression naming an analyzer that is registered and ran but
//     matched no diagnostic on its lines (stale — delete it)
//   - a suppression naming an analyzer the driver has never heard of
//     (typo, or the analyzer was removed)
//   - a bare //lbsq:nocheck that matched nothing (stale, and overly
//     broad even when live — prefer the named form)
//
// Names of registered-but-disabled analyzers (-NAME=false) are skipped
// rather than reported: they cannot be judged on this run. The
// //lbsq:allowblock directive is lockscope's own escape hatch and is
// not part of this audit.
package nocheckaudit

import (
	"lbsq/internal/analysis"
)

// Analyzer is the nocheckaudit analyzer.
var Analyzer = &analysis.Analyzer{
	Name:              "nocheckaudit",
	Doc:               "//lbsq:nocheck comments must still suppress a diagnostic of a registered analyzer; stale, unknown-name, and dead bare suppressions are flagged for deletion",
	AuditSuppressions: true,
	Run:               run,
}

func run(pass *analysis.Pass) error {
	active := make(map[string]bool)
	for _, n := range pass.ActiveAnalyzers() {
		active[n] = true
	}
	registered := make(map[string]bool)
	for _, n := range pass.RegisteredAnalyzers() {
		registered[n] = true
	}
	for _, s := range pass.Suppressions() {
		if len(s.Names) == 0 {
			if len(s.Used) == 0 {
				pass.Reportf(s.Pos, "stale suppression: bare //lbsq:nocheck matched no diagnostic; delete it (and prefer the named form when one is needed)")
			}
			continue
		}
		for _, n := range s.Names {
			switch {
			case !registered[n]:
				pass.Reportf(s.Pos, "//lbsq:nocheck names unknown analyzer %q; fix the name or delete the suppression", n)
			case !active[n]:
				// Disabled on this run; cannot judge.
			case !s.Used[n]:
				pass.Reportf(s.Pos, "stale suppression: //lbsq:nocheck %s matched no %s diagnostic; delete it", n, n)
			}
		}
	}
	return nil
}
