package obslabel_test

import (
	"testing"

	"lbsq/internal/analysis/analysistest"
	"lbsq/internal/analysis/obslabel"
)

func TestObsLabel(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), obslabel.Analyzer, "a")
}
