// Fixture for the obslabel analyzer.
package a

import (
	"strconv"

	"obs"
)

const total = "lbsq_queries_total"

func register(r *obs.Registry, op, dynamic string, code int) {
	r.Counter(total, "number of queries", nil)
	r.Counter("lbsq_errors_total", "errors", obs.Labels{"op": op}) // plain identifier value: allowed.
	r.Counter(dynamic, "help", nil)                                // want `metric name must be a compile-time constant`
	r.Gauge(total, "help "+dynamic, nil)                           // want `metric help must be a compile-time constant`
	r.Counter(total, "queries", obs.Labels{"status": strconv.Itoa(code)})
	r.Counter(total, "queries", obs.Labels{"q": dynamic + "!"}) // want `label value must be a constant`
	r.Counter(total, "queries", obs.Labels{op: "v"})            // want `label key must be a compile-time constant`

	labels := obs.Labels{"shard": "0"}
	r.Gauge(total, "per-shard gauge", labels) // local variable holding only literals: allowed.

	opaque := loadLabels()
	r.Gauge(total, "gauge", opaque)           // want `labels must be nil or an obs\.Labels literal`
	r.Counter(total, "queries", loadLabels()) // want `labels must be nil or an obs\.Labels literal, not a dynamic expression`
}

func loadLabels() obs.Labels { return nil }
