// Package obs is a minimal mock of the real internal/obs registration
// surface. The obslabel analyzer matches the receiver by name (type
// Registry in a package named obs), so fixtures can exercise it
// without importing the real package.
package obs

type Labels map[string]string

type Counter struct{}

type Gauge struct{}

type Registry struct{}

func (*Registry) Counter(name, help string, labels Labels) *Counter { return nil }
func (*Registry) Gauge(name, help string, labels Labels) *Gauge     { return nil }
