// Package obslabel defines an analyzer that keeps the metric namespace
// of internal/obs statically bounded.
//
// Prometheus-style instruments explode in cardinality when names or
// label sets are built from request data (a query coordinate formatted
// into a label value creates one series per query). The analyzer
// therefore requires, for every registration call on an obs.Registry
// (Counter, Gauge, Histogram, CounterFunc, GaugeFunc):
//
//   - the name and help arguments are compile-time constants;
//   - the labels argument is nil, an obs.Labels literal, or a local
//     variable assigned only obs.Labels literals in the same function;
//   - label keys in those literals are compile-time constants;
//   - label values are constants, plain identifiers/selectors (bounded
//     by construction: loop variables over fixed op lists, handler
//     paths), or strconv.Itoa/FormatInt of small ints (status codes).
//     Arbitrary expressions — fmt.Sprintf, float formatting, string
//     concatenation of non-constants — are flagged.
package obslabel

import (
	"go/ast"
	"go/types"

	"lbsq/internal/analysis"
)

// Analyzer is the obslabel analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "obslabel",
	Doc:  "obs metric names and labels must be compile-time bounded (no dynamic cardinality)",
	Run:  run,
}

// registerMethods maps obs.Registry method name to the index of its
// labels argument (name and help are always arguments 0 and 1).
var registerMethods = map[string]int{
	"Counter":     2,
	"Gauge":       2,
	"Histogram":   2,
	"CounterFunc": 2,
	"GaugeFunc":   2,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Track the enclosing function body so identifier label sets
		// can be resolved to their local literal assignments.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			labelsIdx, ok := registryCall(pass, call)
			if !ok || len(call.Args) <= labelsIdx {
				return true
			}
			for i, what := range []string{"metric name", "metric help"} {
				if pass.TypesInfo.Types[call.Args[i]].Value == nil {
					pass.Reportf(call.Args[i].Pos(), "%s must be a compile-time constant", what)
				}
			}
			checkLabels(pass, call.Args[labelsIdx], enclosingFunc(stack))
			return true
		})
	}
	return nil
}

// registryCall reports whether call registers an instrument on an
// obs.Registry, returning the labels argument index.
func registryCall(pass *analysis.Pass, call *ast.CallExpr) (int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	idx, ok := registerMethods[sel.Sel.Name]
	if !ok {
		return 0, false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return 0, false
	}
	named := namedOf(selection.Recv())
	if named == nil || named.Obj().Name() != "Registry" || named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "obs" {
		return 0, false
	}
	return idx, true
}

// checkLabels validates one labels argument.
func checkLabels(pass *analysis.Pass, arg ast.Expr, fn ast.Node) {
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return
		}
		// A local variable: every literal assigned to it in the
		// enclosing function must validate; anything else is opaque.
		lits, opaque := localLabelLiterals(pass, e, fn)
		if opaque || len(lits) == 0 {
			pass.Reportf(arg.Pos(), "labels must be nil or an obs.Labels literal (directly or via a local variable); %s is not statically bounded", e.Name)
			return
		}
		for _, lit := range lits {
			checkLabelLiteral(pass, lit)
		}
	case *ast.CompositeLit:
		checkLabelLiteral(pass, e)
	default:
		pass.Reportf(arg.Pos(), "labels must be nil or an obs.Labels literal, not a dynamic expression")
	}
}

// checkLabelLiteral validates the keys and values of one obs.Labels
// composite literal.
func checkLabelLiteral(pass *analysis.Pass, lit *ast.CompositeLit) {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if pass.TypesInfo.Types[kv.Key].Value == nil {
			pass.Reportf(kv.Key.Pos(), "label key must be a compile-time constant")
		}
		if !boundedLabelValue(pass, kv.Value) {
			pass.Reportf(kv.Value.Pos(), "label value must be a constant, a plain identifier, or strconv.Itoa/FormatInt — dynamic values explode metric cardinality")
		}
	}
}

// boundedLabelValue accepts constants, plain identifiers and selector
// chains (values bounded by construction), and integer formatting via
// strconv (status codes and similar small enums).
func boundedLabelValue(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if pass.TypesInfo.Types[e].Value != nil {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return true
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "strconv" {
			return false
		}
		return obj.Name() == "Itoa" || obj.Name() == "FormatInt"
	}
	return false
}

// localLabelLiterals collects the composite literals assigned to ident
// within fn. opaque is true when the variable receives any non-literal
// value (parameter, call result, map read, …).
func localLabelLiterals(pass *analysis.Pass, ident *ast.Ident, fn ast.Node) (lits []*ast.CompositeLit, opaque bool) {
	target := pass.TypesInfo.Uses[ident]
	if target == nil || fn == nil {
		return nil, true
	}
	ast.Inspect(fn, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != target {
				continue
			}
			if lit, ok := ast.Unparen(as.Rhs[i]).(*ast.CompositeLit); ok {
				lits = append(lits, lit)
			} else {
				opaque = true
			}
		}
		return true
	})
	return lits, opaque
}

// enclosingFunc returns the innermost FuncDecl or FuncLit in the
// traversal stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}
