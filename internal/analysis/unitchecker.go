package analysis

// This file implements the `go vet -vettool=` driver protocol (the
// role golang.org/x/tools/go/analysis/unitchecker plays for upstream
// analyzers) using only the standard library. The go command invokes
// the tool in three modes:
//
//	tool -V=full        print a version fingerprint for build caching
//	tool -flags         describe supported flags as JSON
//	tool [flags] x.cfg  analyze the single package unit described by
//	                    the JSON config file, writing diagnostics to
//	                    stderr and an (empty) facts file to VetxOutput
//
// Because every lbsq analyzer is local — no cross-package facts —
// dependency units (VetxOnly: true) are satisfied by writing the empty
// facts file without parsing or type-checking anything, so a whole-
// module `go vet` pays the analysis cost only for the module's own
// packages.

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"os"
	"runtime"
	"strings"
)

// Config mirrors the JSON schema of the *.cfg files the go command
// hands to vet tools (cmd/go/internal/work.vetConfig).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main implements the vet-tool entry point for the given analyzers and
// exits the process. progname is used in version output and usage.
func Main(progname string, analyzers ...*Analyzer) {
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "%s: project-specific static analyzers for lbsq\n\n", progname)
		fmt.Fprintf(os.Stderr, "usage: go vet -vettool=$(command -v %s) [-NAME=false] ./...\n\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, firstLine(a.Doc))
		}
		fs.PrintDefaults()
	}
	vFlag := fs.String("V", "", "print version and exit (-V=full for a fingerprint)")
	flagsFlag := fs.Bool("flags", false, "print flags in JSON and exit")
	printPath := fs.Bool("print-path", false, "print the path of this executable and exit")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+firstLine(a.Doc))
	}
	_ = fs.Parse(os.Args[1:])

	switch {
	case *vFlag != "":
		printVersion(progname, *vFlag)
		os.Exit(0)
	case *flagsFlag:
		printFlagsJSON(fs)
		os.Exit(0)
	case *printPath:
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(exe)
		os.Exit(0)
	}

	if fs.NArg() != 1 || !strings.HasSuffix(fs.Arg(0), ".cfg") {
		fs.Usage()
		os.Exit(2)
	}
	var active []*Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	os.Exit(runUnit(fs.Arg(0), active))
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// printVersion emits the fingerprint line the go command hashes for
// its build cache (same shape as x/tools analysisflags).
func printVersion(progname, mode string) {
	if mode != "full" {
		fmt.Printf("%s version devel\n", progname)
		return
	}
	exe, err := os.Executable()
	if err == nil {
		if f, err2 := os.Open(exe); err2 == nil {
			h := sha256.New()
			_, _ = io.Copy(h, f)
			f.Close()
			fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
			return
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=unknown\n", progname)
}

// printFlagsJSON describes the tool's flags so the go command can
// validate the vet flags it forwards.
func printFlagsJSON(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		isBool := false
		if bf, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = bf.IsBoolFlag()
		}
		out = append(out, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, _ := json.Marshal(out)
	os.Stdout.Write(data)
	fmt.Println()
}

// runUnit analyzes one package unit and returns the process exit code.
func runUnit(cfgFile string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "%s: cannot decode JSON config: %v\n", cfgFile, err)
		return 1
	}
	// The go command requires the facts file to exist after every unit,
	// including dependency-only units. lbsq analyzers produce no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, cfg, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: typecheck: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := Run(fset, files, pkg, info, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// typecheck type-checks the unit's files against the export data the
// go command supplied in the config.
func typecheck(fset *token.FileSet, cfg *Config, files []*ast.File) (*types.Package, *types.Info, error) {
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tconf := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			if mapped, ok := cfg.ImportMap[importPath]; ok {
				importPath = mapped
			}
			return compImp.Import(importPath)
		}),
		Sizes: types.SizesFor("gc", goarch()),
		Error: func(error) {}, // collect via returned error; keep first only
	}
	if version.IsValid(cfg.GoVersion) {
		tconf.GoVersion = cfg.GoVersion
	}
	info := NewTypesInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

func goarch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
