package analysis

// This file implements the `go vet -vettool=` driver protocol (the
// role golang.org/x/tools/go/analysis/unitchecker plays for upstream
// analyzers) using only the standard library. The go command invokes
// the tool in three modes:
//
//	tool -V=full        print a version fingerprint for build caching
//	tool -flags         describe supported flags as JSON
//	tool [flags] x.cfg  analyze the single package unit described by
//	                    the JSON config file, writing diagnostics to
//	                    stderr and a facts file to VetxOutput
//
// Facts flow the way they do in x/tools' unitchecker: the go command
// schedules a VetxOnly unit for every dependency, hands each unit the
// vetx files of its direct dependencies via PackageVetx, and caches
// VetxOutput. A unit's vetx file holds the *transitive* facts — its
// own package's exports merged with everything it imported — encoded
// as JSON (PackageFacts), so one hop of PackageVetx is enough.
// Standard-library units are not analyzed (analyzers carry curated
// knowledge of stdlib blocking/allocating primitives instead); their
// vetx files are empty, which keeps whole-module `go vet` cheap.

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// Config mirrors the JSON schema of the *.cfg files the go command
// hands to vet tools (cmd/go/internal/work.vetConfig).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main implements the vet-tool entry point for the given analyzers and
// exits the process. progname is used in version output and usage.
func Main(progname string, analyzers ...*Analyzer) {
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "%s: project-specific static analyzers for lbsq\n\n", progname)
		fmt.Fprintf(os.Stderr, "usage: go vet -vettool=$(command -v %s) [-NAME=false] ./...\n\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, firstLine(a.Doc))
		}
		fs.PrintDefaults()
	}
	vFlag := fs.String("V", "", "print version and exit (-V=full for a fingerprint)")
	flagsFlag := fs.Bool("flags", false, "print flags in JSON and exit")
	printPath := fs.Bool("print-path", false, "print the path of this executable and exit")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+firstLine(a.Doc))
	}
	_ = fs.Parse(os.Args[1:])

	switch {
	case *vFlag != "":
		printVersion(progname, *vFlag)
		os.Exit(0)
	case *flagsFlag:
		printFlagsJSON(fs)
		os.Exit(0)
	case *printPath:
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(exe)
		os.Exit(0)
	}

	if fs.NArg() != 1 || !strings.HasSuffix(fs.Arg(0), ".cfg") {
		fs.Usage()
		os.Exit(2)
	}
	var active []*Analyzer
	registered := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		registered = append(registered, a.Name)
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	os.Exit(runUnit(fs.Arg(0), active, registered))
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// printVersion emits the fingerprint line the go command hashes for
// its build cache (same shape as x/tools analysisflags).
func printVersion(progname, mode string) {
	if mode != "full" {
		fmt.Printf("%s version devel\n", progname)
		return
	}
	exe, err := os.Executable()
	if err == nil {
		if f, err2 := os.Open(exe); err2 == nil {
			h := sha256.New()
			_, _ = io.Copy(h, f)
			f.Close()
			fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
			return
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=unknown\n", progname)
}

// printFlagsJSON describes the tool's flags so the go command can
// validate the vet flags it forwards.
func printFlagsJSON(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		isBool := false
		if bf, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = bf.IsBoolFlag()
		}
		out = append(out, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, _ := json.Marshal(out)
	os.Stdout.Write(data)
	fmt.Println()
}

// runUnit analyzes one package unit and returns the process exit code.
func runUnit(cfgFile string, analyzers []*Analyzer, registered []string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "%s: cannot decode JSON config: %v\n", cfgFile, err)
		return 1
	}
	// Standard-library units are never analyzed: analyzers encode what
	// they need to know about stdlib primitives directly (see the
	// curated call lists in lockscope/hotpath), so their facts are
	// empty. Without this, blocking-ness becomes viral through runtime
	// internals (everything transitively reaches the allocator's
	// channel operations) and the facts are pure noise. The go command
	// still requires the vetx file to exist. cfg.Standard only maps the
	// unit's *imports*, so std-ness of the unit itself is detected by
	// its sources living under GOROOT.
	if isStdUnit(cfg) {
		return writeVetx(cfg, nil)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg, nil)
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, cfg, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg, nil)
		}
		fmt.Fprintf(os.Stderr, "%s: typecheck: %v\n", cfg.ImportPath, err)
		return 1
	}

	imported := readVetx(cfg)
	run := analyzers
	if cfg.VetxOnly {
		// Dependency units exist only to produce facts; suppression
		// audits report on code, not facts, so skip them here.
		run = nil
		for _, a := range analyzers {
			if !a.AuditSuppressions {
				run = append(run, a)
			}
		}
	}
	diags, exported, err := RunUnit(Unit{
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		Imported:   imported,
		Registered: registered,
	}, run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// The unit's vetx holds the transitive facts: everything imported
	// plus this package's own exports.
	merged := make(PackageFacts, len(imported)+1)
	for path, f := range imported {
		merged[path] = f
	}
	if len(exported) > 0 {
		merged[cfg.ImportPath] = exported
	}
	if code := writeVetx(cfg, merged); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// isStdUnit reports whether the unit being analyzed is a standard-
// library package (its Go files live under GOROOT/src).
func isStdUnit(cfg *Config) bool {
	if cfg.Standard[cfg.ImportPath] || cfg.ImportPath == "unsafe" {
		return true
	}
	if len(cfg.GoFiles) == 0 {
		return true
	}
	goroot := os.Getenv("GOROOT")
	if goroot == "" {
		goroot = runtime.GOROOT()
	}
	if goroot == "" {
		return false
	}
	root := filepath.Join(goroot, "src") + string(filepath.Separator)
	return strings.HasPrefix(cfg.GoFiles[0], root)
}

// readVetx decodes the dependency facts the go command supplied via
// PackageVetx. Each file holds a transitive PackageFacts map; merging
// direct dependencies therefore yields the full transitive closure.
func readVetx(cfg *Config) PackageFacts {
	merged := make(PackageFacts)
	for _, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil || len(data) == 0 {
			continue // std unit or older empty-format file
		}
		var pf PackageFacts
		if json.Unmarshal(data, &pf) != nil {
			continue
		}
		for path, f := range pf {
			if len(f) > 0 {
				merged[path] = f
			}
		}
	}
	return merged
}

// writeVetx writes the unit's facts file (required by the go command
// even when empty) and returns a process exit code.
func writeVetx(cfg *Config, facts PackageFacts) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	var data []byte
	if len(facts) > 0 {
		var err error
		// encoding/json sorts map keys, so the output is deterministic
		// and safe for the go command's content-addressed build cache.
		if data, err = json.Marshal(facts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// typecheck type-checks the unit's files against the export data the
// go command supplied in the config.
func typecheck(fset *token.FileSet, cfg *Config, files []*ast.File) (*types.Package, *types.Info, error) {
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tconf := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			if mapped, ok := cfg.ImportMap[importPath]; ok {
				importPath = mapped
			}
			return compImp.Import(importPath)
		}),
		Sizes: types.SizesFor("gc", goarch()),
		Error: func(error) {}, // collect via returned error; keep first only
	}
	if version.IsValid(cfg.GoVersion) {
		tconf.GoVersion = cfg.GoVersion
	}
	info := NewTypesInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

func goarch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
