// Package hotpath defines an analyzer that keeps annotated hot paths
// allocation-free.
//
// The sessions experiment and the bench smoke assert 0 allocs/op for
// the NN/window candidate walk, the Session.Move in-region path, the
// qexec cache-hit path, and the WAL append encode path. Mark such a
// function by putting
//
//	//lbsq:hotpath
//
// in its doc comment. Inside an annotated function the analyzer flags
// the constructs that make the Go compiler heap-allocate:
//
//   - function literals that are not immediately invoked (escaping
//     closures; deferred literals are exempt — open-coded defers keep
//     them on the stack)
//   - interface boxing at call sites: a concrete non-pointer value
//     passed where the callee takes an interface (constants and nil
//     are exempt)
//   - append to a slice declared in the same function without
//     capacity
//   - any fmt.* call
//   - map and slice composite literals, make, and new
//   - non-constant string concatenation
//
// Struct literals (including &T{...}) are deliberately not flagged:
// escape analysis stack-allocates them when they do not escape, which
// is exactly the *out-parameter and trace-value idiom the hot paths
// use.
//
// Every function's allocation constructs are also summarized as a
// fact, transitively: calling a function that (transitively) contains
// one is flagged at the call site, across package boundaries. A callee
// that carries its own //lbsq:hotpath annotation is trusted — it is
// checked at its own definition — so annotation follows the call graph
// of the hot paths themselves. Dynamic calls (func values, interface
// methods) are invisible; keep hot paths monomorphic. Cold branches
// inside an annotated function (cache-miss handoffs, error paths) are
// suppressed with //lbsq:nocheck hotpath; keep one per function by
// delegating the cold work to an un-annotated helper.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lbsq/internal/analysis"
	"lbsq/internal/analysis/lockutil"
)

// Analyzer is the hotpath analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "functions annotated //lbsq:hotpath (and their transitive callees, via facts) must avoid allocation constructs: escaping closures, interface boxing, growing appends, fmt, map/slice literals, string concatenation",
	Run:  run,
}

// Directive is the doc-comment marker for hot functions.
const Directive = "//lbsq:hotpath"

// hotFact summarizes a function for its callers: Hot means the
// function is annotated (and therefore checked at its definition);
// Allocs lists up to three allocation constructs reachable through it.
type hotFact struct {
	Hot    bool     `json:",omitempty"`
	Allocs []string `json:",omitempty"`
}

const allocsCap = 3

type construct struct {
	pos  token.Pos
	desc string
}

type fnInfo struct {
	decl *ast.FuncDecl
	obj  *types.Func
	hot  bool
	// own are the constructs in the function body itself.
	own []construct
	// allocs is the transitive summary (fixpoint state), capped.
	allocs []string
	calls  []callSite
}

type callSite struct {
	callee *types.Func
	pos    token.Pos
}

func run(pass *analysis.Pass) error {
	var fns []*fnInfo
	byObj := make(map[*types.Func]*fnInfo)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &fnInfo{decl: fd, obj: obj, hot: IsHot(fd)}
			scan(pass, fi)
			for _, c := range fi.own {
				if len(fi.allocs) < allocsCap {
					fi.allocs = append(fi.allocs, c.desc)
				}
			}
			fns = append(fns, fi)
			byObj[obj] = fi
		}
	}

	// Transitive allocation summaries: a function inherits the (first)
	// construct of every non-hot callee, cross-package via facts.
	calleeFact := func(callee *types.Func) hotFact {
		if fi, ok := byObj[callee]; ok {
			return hotFact{Hot: fi.hot, Allocs: fi.allocs}
		}
		var hf hotFact
		pass.ImportObjectFact(callee, &hf)
		return hf
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			if len(fi.allocs) >= allocsCap {
				continue
			}
			for _, cs := range fi.calls {
				hf := calleeFact(cs.callee)
				if hf.Hot || len(hf.Allocs) == 0 {
					continue
				}
				entry := "calls " + shortName(cs.callee) + ": " + hf.Allocs[0]
				if !contains(fi.allocs, entry) && len(fi.allocs) < allocsCap {
					fi.allocs = append(fi.allocs, entry)
					changed = true
				}
			}
		}
	}
	for _, fi := range fns {
		if fi.hot || len(fi.allocs) > 0 {
			if err := pass.ExportObjectFact(fi.obj, hotFact{Hot: fi.hot, Allocs: fi.allocs}); err != nil {
				return err
			}
		}
	}

	// Diagnostics: only inside annotated functions.
	for _, fi := range fns {
		if !fi.hot {
			continue
		}
		for _, c := range fi.own {
			pass.Reportf(c.pos, "%s on a %s path; hoist it out of the hot path or move the cold branch behind //lbsq:nocheck hotpath", c.desc, Directive)
		}
		for _, cs := range fi.calls {
			hf := calleeFact(cs.callee)
			if hf.Hot || len(hf.Allocs) == 0 {
				continue
			}
			pass.Reportf(cs.pos, "call to %s allocates on a %s path (%s); annotate the callee %s if it is part of the hot path, or move the call to a cold branch behind //lbsq:nocheck hotpath",
				shortName(cs.callee), Directive, hf.Allocs[0], Directive)
		}
	}
	return nil
}

// IsHot reports whether the declaration's doc comment carries the
// //lbsq:hotpath directive. Exported for the annotation-coverage test.
func IsHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), Directive) {
			return true
		}
	}
	return false
}

// scan records fi's own allocation constructs and outgoing static
// calls. Goroutine bodies are excluded (asynchronous work is not on
// the caller's path); non-invoked function literals are flagged as
// closures and not descended into.
func scan(pass *analysis.Pass, fi *fnInfo) {
	info := pass.TypesInfo

	// Slices declared locally without capacity, for the append rule.
	noCap := make(map[types.Object]bool)
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) && len(n.Rhs) != 1 {
					continue
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				obj := info.Defs[id]
				if obj == nil || !isSlice(obj.Type()) {
					continue
				}
				if !hasCapacity(info, rhs) {
					noCap[obj] = true
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) > 0 {
						continue
					}
					for _, name := range vs.Names {
						if obj := info.Defs[name]; obj != nil && isSlice(obj.Type()) {
							noCap[obj] = true
						}
					}
				}
			}
		}
		return true
	})

	add := func(pos token.Pos, desc string) {
		fi.own = append(fi.own, construct{pos: pos, desc: desc})
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				return false
			case *ast.DeferStmt:
				// Deferred literal calls stay on the stack (open-coded
				// defers); the call's arguments and non-literal callees
				// are still on the path.
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body)
					return false
				}
				return true
			case *ast.FuncLit:
				add(n.Pos(), "escaping closure")
				return false
			case *ast.CompositeLit:
				t := info.Types[n].Type
				if t == nil {
					return true
				}
				switch t.Underlying().(type) {
				case *types.Map:
					add(n.Pos(), "map literal")
				case *types.Slice:
					add(n.Pos(), "slice literal")
				}
				return true
			case *ast.BinaryExpr:
				if n.Op == token.ADD {
					if tv, ok := info.Types[n]; ok && tv.Value == nil && isString(tv.Type) {
						add(n.OpPos, "string concatenation")
						// Report once per concatenation chain.
						return false
					}
				}
			case *ast.CallExpr:
				checkCall(pass, fi, n, noCap, add)
				// Don't descend into an immediately invoked literal's
				// body twice — checkCall walks it.
				if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
					for _, arg := range n.Args {
						walk(arg)
					}
					walk(lit.Body)
					return false
				}
			}
			return true
		})
	}
	walk(fi.decl.Body)
}

func checkCall(pass *analysis.Pass, fi *fnInfo, call *ast.CallExpr, noCap map[types.Object]bool, add func(token.Pos, string)) {
	info := pass.TypesInfo

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				if len(call.Args) > 0 {
					if base, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
						if noCap[info.Uses[base]] {
							add(call.Pos(), "append to a slice declared without capacity")
						}
					}
				}
			case "make":
				if t := info.Types[call].Type; t != nil {
					switch t.Underlying().(type) {
					case *types.Map:
						add(call.Pos(), "make(map)")
					case *types.Slice:
						add(call.Pos(), "make(slice)")
					case *types.Chan:
						add(call.Pos(), "make(chan)")
					}
				}
			case "new":
				add(call.Pos(), "new()")
			}
			return
		}
	}
	// Type conversions are not calls, but string↔slice conversions copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			to, from := info.Types[call].Type, info.Types[call.Args[0]].Type
			if to != nil && from != nil {
				if isString(to) && isSlice(from) {
					add(call.Pos(), "slice-to-string conversion")
				} else if isSlice(to) && isString(from) {
					add(call.Pos(), "string-to-slice conversion")
				}
			}
		}
		return
	}

	callee := lockutil.Callee(info, call)
	if callee != nil {
		if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
			add(call.Pos(), "fmt."+callee.Name()+" call")
			return
		}
		fi.calls = append(fi.calls, callSite{callee: callee, pos: call.Pos()})
	}

	// Interface boxing: concrete non-pointer value passed to an
	// interface parameter.
	sig := signatureOf(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.Value != nil || tv.IsNil() {
			continue // constants and nil never box on the heap
		}
		at := tv.Type
		if at == nil || types.IsInterface(at) {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // pointers fit the interface word
		}
		add(arg.Pos(), "interface boxing of "+at.String())
	}
}

func signatureOf(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func hasCapacity(info *types.Info, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	return len(call.Args) == 3
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func shortName(fn *types.Func) string {
	full := fn.FullName()
	if i := strings.LastIndex(full, "/"); i >= 0 {
		for j := i; j >= 0; j-- {
			if full[j] == '(' || full[j] == '*' {
				return full[:j+1] + full[i+1:]
			}
		}
		return full[i+1:]
	}
	return full
}
