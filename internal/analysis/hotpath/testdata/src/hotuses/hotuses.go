// Two-package fixture: hotdep.Describe's allocation fact is reported
// at this call site; hotdep.Fast's hot fact makes it trusted.
package hotuses

import "hotdep"

//lbsq:hotpath
func Serve(n int) int {
	hotdep.Describe(n) // want `call to hotdep\.Describe allocates on a //lbsq:hotpath path \(fmt\.Sprintf call\)`
	return hotdep.Fast(n)
}
