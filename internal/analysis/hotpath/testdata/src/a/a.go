// Fixture for the hotpath analyzer: allocation constructs under the
// //lbsq:hotpath directive.
package a

import "fmt"

type res struct{ x, y int }

// Hit is the clean shape: out-parameter filled with a struct literal
// (stack-allocated), no constructs.
//
//lbsq:hotpath
func Hit(dst *res, xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	*dst = res{x: s, y: len(xs)}
	return s
}

//lbsq:hotpath
func Bad(xs []int) string {
	f := func() int { return 1 } // want `escaping closure on a //lbsq:hotpath path`
	_ = f
	m := map[int]int{} // want `map literal on a //lbsq:hotpath path`
	_ = m
	s := fmt.Sprintf("%d", len(xs)) // want `fmt\.Sprintf call on a //lbsq:hotpath path`
	return s + "!"                  // want `string concatenation on a //lbsq:hotpath path`
}

//lbsq:hotpath
func Gather(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append to a slice declared without capacity on a //lbsq:hotpath path`
	}
	return out
}

// Fill appends into a caller-provided slice: the declaration is not
// visible here, so growth is the caller's contract. Not flagged.
//
//lbsq:hotpath
func Fill(out []int, xs []int) []int {
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

func sink(v interface{}) {}

//lbsq:hotpath
func Box(p *res, n int) {
	sink(p)  // pointer fits the interface word: fine
	sink(n)  // want `interface boxing of int on a //lbsq:hotpath path`
	sink(42) // constant: fine
}

//lbsq:hotpath
func News(b []byte) string {
	p := new(res)     // want `new\(\) on a //lbsq:hotpath path`
	xs := []int{1, 2} // want `slice literal on a //lbsq:hotpath path`
	_ = p
	_ = xs
	return string(b) // want `slice-to-string conversion on a //lbsq:hotpath path`
}

// step is itself annotated, so callers trust it.
//
//lbsq:hotpath
func step(dst *res) { dst.x++ }

// slowHelper carries an allocation fact (fmt call) but is not hot.
func slowHelper() string { return fmt.Sprint("x") }

//lbsq:hotpath
func Walk2(dst *res) {
	step(dst)
	slowHelper() // want `call to a\.slowHelper allocates on a //lbsq:hotpath path \(fmt\.Sprint call\)`
}

func slowCold() { fmt.Println("miss") }

// WithCold keeps its cold branch behind a named suppression.
//
//lbsq:hotpath
func WithCold(dst *res, miss bool) {
	if miss {
		slowCold() //lbsq:nocheck hotpath — fixture: miss path pays a full query
		return
	}
	dst.x++
}

// Spawn hands work to a goroutine; asynchronous work is off-path.
//
//lbsq:hotpath
func Spawn(ch chan int) {
	go func() { ch <- 1 }()
}

// cold is un-annotated: constructs here produce facts, not
// diagnostics.
func cold() map[int]int {
	return map[int]int{1: 2}
}
