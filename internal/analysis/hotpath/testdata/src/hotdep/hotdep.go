// Dependency fixture: Describe exports an allocation fact, Fast
// exports a hot (trusted) fact; both cross the package boundary.
package hotdep

import "fmt"

// Describe allocates: it formats.
func Describe(n int) string { return fmt.Sprintf("n=%d", n) }

// Fast is annotated, so callers trust it and it is checked here.
//
//lbsq:hotpath
func Fast(n int) int { return n * 2 }
