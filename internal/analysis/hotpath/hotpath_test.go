package hotpath_test

import (
	"testing"

	"lbsq/internal/analysis/analysistest"
	"lbsq/internal/analysis/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), hotpath.Analyzer, "a", "hotuses")
}
