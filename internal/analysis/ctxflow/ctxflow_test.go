package ctxflow_test

import (
	"testing"

	"lbsq/internal/analysis/analysistest"
	"lbsq/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxflow.Analyzer, "a", "netcall")
}
