// Package ctxflow defines an analyzer that enforces context threading
// on request paths.
//
// Every query path in lbsq is context-aware (the Ctx method variants,
// the HTTP handlers via r.Context(), the shard scatter). A function
// that already has a context.Context in scope — an explicit parameter,
// or an *http.Request whose Context method supplies one — must thread
// it; minting a fresh context.Background() or context.TODO() inside
// such a function detaches the downstream work from cancellation and
// deadlines, so a disconnected client no longer aborts its scatter
// fan-out.
//
// Functions without an incoming context (top-level convenience
// wrappers, main, tests' setup helpers) are free to start from
// context.Background.
//
// The analyzer additionally flags network calls that cannot carry a
// deadline at all, anywhere in non-test files: http.NewRequest (which
// silently binds context.Background) and the convenience helpers
// http.Get/Head/Post/PostForm and their (*http.Client) method forms.
// A distributed lbsq node talks to peers on every query; a single
// context-free dial can hang a scatter fan-out forever. Build requests
// with http.NewRequestWithContext instead — the coordinator's
// OpTimeout and the caller's context then bound every attempt.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"lbsq/internal/analysis"
)

// Analyzer is the ctxflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "request-path functions must thread their incoming context, not context.Background/TODO; network calls must carry a deadline-bearing context",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if !strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			checkNetworkCalls(pass, f)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			source := incomingContext(pass, fd.Type.Params)
			if source == "" {
				return true
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				// A nested function literal with its own context
				// parameter starts a new scope of responsibility.
				if fl, ok := n.(*ast.FuncLit); ok && incomingContext(pass, fl.Type.Params) != "" {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name := freshContextCall(pass, call); name != "" {
					pass.Reportf(call.Pos(), "%s called in a function with an incoming context (%s); thread that context instead", name, source)
				}
				return true
			})
			return true
		})
	}
	return nil
}

// incomingContext reports how the function receives a context: a
// context.Context parameter or an *http.Request parameter ("" if
// neither).
func incomingContext(pass *analysis.Pass, params *ast.FieldList) string {
	if params == nil {
		return ""
	}
	for _, fld := range params.List {
		t := pass.TypesInfo.Types[fld.Type].Type
		if t == nil {
			continue
		}
		if isNamed(t, "context", "Context") {
			return "parameter " + fieldName(fld)
		}
		if p, ok := t.(*types.Pointer); ok && isNamed(p.Elem(), "net/http", "Request") {
			return fieldName(fld) + ".Context()"
		}
	}
	return ""
}

func fieldName(fld *ast.Field) string {
	if len(fld.Names) > 0 {
		return fld.Names[0].Name
	}
	return "_"
}

// freshContextCall reports whether call is context.Background() or
// context.TODO(), returning its display name.
func freshContextCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return ""
	}
	if obj.Name() == "Background" || obj.Name() == "TODO" {
		return "context." + obj.Name()
	}
	return ""
}

// contextFreeNetHelpers are the net/http entry points that cannot
// carry a caller context: the package-level convenience helpers and
// their (*http.Client) method forms dial with no deadline, and
// http.NewRequest binds context.Background.
var contextFreeNetHelpers = map[string]bool{
	"Get":      true,
	"Head":     true,
	"Post":     true,
	"PostForm": true,
}

// checkNetworkCalls flags context-free network entry points anywhere
// in a non-test file, regardless of whether the enclosing function has
// an incoming context: a network call with no deadline can hang
// forever either way.
func checkNetworkCalls(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
			return true
		}
		name := obj.Name()
		if fn, ok := obj.(*types.Func); ok && fn.Type().(*types.Signature).Recv() != nil {
			// Method form: only (*http.Client) carries the helpers.
			recv := fn.Type().(*types.Signature).Recv().Type()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if isNamed(recv, "net/http", "Client") && contextFreeNetHelpers[name] {
				pass.Reportf(call.Pos(), "(*http.Client).%s issues a network call without a deadline-bearing context; build the request with http.NewRequestWithContext and use Do", name)
			}
			return true
		}
		if name == "NewRequest" {
			pass.Reportf(call.Pos(), "http.NewRequest binds context.Background; use http.NewRequestWithContext so the request honors deadlines and cancellation")
			return true
		}
		if contextFreeNetHelpers[name] {
			pass.Reportf(call.Pos(), "http.%s issues a network call without a deadline-bearing context; build the request with http.NewRequestWithContext and use a client", name)
		}
		return true
	})
}

func isNamed(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
