// Package ctxflow defines an analyzer that enforces context threading
// on request paths.
//
// Every query path in lbsq is context-aware (the Ctx method variants,
// the HTTP handlers via r.Context(), the shard scatter). A function
// that already has a context.Context in scope — an explicit parameter,
// or an *http.Request whose Context method supplies one — must thread
// it; minting a fresh context.Background() or context.TODO() inside
// such a function detaches the downstream work from cancellation and
// deadlines, so a disconnected client no longer aborts its scatter
// fan-out.
//
// Functions without an incoming context (top-level convenience
// wrappers, main, tests' setup helpers) are free to start from
// context.Background.
package ctxflow

import (
	"go/ast"
	"go/types"

	"lbsq/internal/analysis"
)

// Analyzer is the ctxflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "request-path functions must thread their incoming context, not context.Background/TODO",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			source := incomingContext(pass, fd.Type.Params)
			if source == "" {
				return true
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				// A nested function literal with its own context
				// parameter starts a new scope of responsibility.
				if fl, ok := n.(*ast.FuncLit); ok && incomingContext(pass, fl.Type.Params) != "" {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name := freshContextCall(pass, call); name != "" {
					pass.Reportf(call.Pos(), "%s called in a function with an incoming context (%s); thread that context instead", name, source)
				}
				return true
			})
			return true
		})
	}
	return nil
}

// incomingContext reports how the function receives a context: a
// context.Context parameter or an *http.Request parameter ("" if
// neither).
func incomingContext(pass *analysis.Pass, params *ast.FieldList) string {
	if params == nil {
		return ""
	}
	for _, fld := range params.List {
		t := pass.TypesInfo.Types[fld.Type].Type
		if t == nil {
			continue
		}
		if isNamed(t, "context", "Context") {
			return "parameter " + fieldName(fld)
		}
		if p, ok := t.(*types.Pointer); ok && isNamed(p.Elem(), "net/http", "Request") {
			return fieldName(fld) + ".Context()"
		}
	}
	return ""
}

func fieldName(fld *ast.Field) string {
	if len(fld.Names) > 0 {
		return fld.Names[0].Name
	}
	return "_"
}

// freshContextCall reports whether call is context.Background() or
// context.TODO(), returning its display name.
func freshContextCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return ""
	}
	if obj.Name() == "Background" || obj.Name() == "TODO" {
		return "context." + obj.Name()
	}
	return ""
}

func isNamed(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
