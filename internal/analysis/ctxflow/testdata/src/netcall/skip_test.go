// Test files are exempt from the network-call rules: tests routinely
// hit local httptest servers with the convenience helpers.
package netcall

import "net/http"

func testHelperUsesGet(url string) {
	_, _ = http.Get(url) // no finding: _test.go files are exempt.
}
