// Fixture for the ctxflow network-call rules: context-free net/http
// entry points are flagged in non-test files, with or without an
// incoming context in scope.
package netcall

import (
	"context"
	"net/http"
	"strings"
)

func plainHelpers() {
	_, _ = http.Get("http://node/v1/info")                                              // want `http\.Get issues a network call without a deadline-bearing context`
	_, _ = http.Head("http://node/v1/info")                                             // want `http\.Head issues a network call without a deadline-bearing context`
	_, _ = http.Post("http://node/v1/shard", "application/json", strings.NewReader("")) // want `http\.Post issues a network call without a deadline-bearing context`
	_, _ = http.PostForm("http://node/v1/shard", nil)                                   // want `http\.PostForm issues a network call without a deadline-bearing context`
}

func requestWithoutContext() (*http.Request, error) {
	return http.NewRequest("GET", "http://node/v1/info", nil) // want `http\.NewRequest binds context\.Background; use http\.NewRequestWithContext`
}

func clientHelpers(c *http.Client) {
	_, _ = c.Get("http://node/v1/info")              // want `\(\*http\.Client\)\.Get issues a network call without a deadline-bearing context`
	_, _ = c.Head("http://node/v1/info")             // want `\(\*http\.Client\)\.Head issues a network call without a deadline-bearing context`
	_, _ = c.Post("http://node/v1/shard", "", nil)   // want `\(\*http\.Client\)\.Post issues a network call without a deadline-bearing context`
	_, _ = c.PostForm("http://node/v1/shard", nil)   // want `\(\*http\.Client\)\.PostForm issues a network call without a deadline-bearing context`
	_, _ = http.DefaultClient.Get("http://node/v1/") // want `\(\*http\.Client\)\.Get issues a network call without a deadline-bearing context`
}

// The context-carrying forms are the fix, not a finding.
func threaded(ctx context.Context, c *http.Client) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://node/v1/info", nil)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Suppression works exactly as for the other rules.
func suppressed() {
	_, _ = http.Get("http://node/v1/info") //lbsq:nocheck ctxflow
}
