// Fixture for the ctxflow analyzer.
package a

import "context"

func handle(ctx context.Context) {
	_ = context.Background() // want `context\.Background called in a function with an incoming context \(parameter ctx\)`
	c := context.TODO()      // want `context\.TODO called in a function with an incoming context`
	_ = c
	_ = ctx
}

func helper() context.Context {
	return context.Background() // no incoming context: allowed.
}

func nested(ctx context.Context) {
	// A literal with its own context parameter starts a new scope of
	// responsibility; its body is exempt at this declaration.
	scoped := func(ctx context.Context) { _ = ctx }
	scoped(ctx)
	plain := func() {
		_ = context.Background() // want `context\.Background called in a function with an incoming context`
	}
	plain()
}
