// Package lockutil holds the mutex-awareness shared by the lockscope
// and lockorder analyzers: recognizing sync.Mutex/RWMutex operations,
// canonicalizing a lock expression to a stable cross-package "lock
// class" name, and walking a function body in source order while
// tracking which locks are held.
//
// The walk uses sequential semantics: branches do not fork the held
// set, so a lock released on only one arm of an if-statement is
// treated as released. This trades false negatives (a blocking call
// after an early unlock in the other arm goes unreported) for zero
// branch-explosion cost, which is the right trade for a vet-time
// checker. `defer mu.Unlock()` keeps the lock held to the end of the
// function; deferred non-unlock calls are visited as ordinary calls at
// the defer statement with the held set of that point, which under
// LIFO defer ordering matches when they actually run relative to a
// deferred unlock registered earlier.
package lockutil

import (
	"go/ast"
	"go/token"
	"go/types"

	"lbsq/internal/analysis"
)

// A LockOp is one recognized mutex operation.
type LockOp struct {
	// Method is Lock, Unlock, RLock, or RUnlock.
	Method string
	// Recv is the receiver expression the mutex was reached through.
	Recv ast.Expr
}

// MutexOp reports whether call invokes a sync.Mutex or sync.RWMutex
// lock method (directly or promoted through embedding).
func MutexOp(info *types.Info, call *ast.CallExpr) (LockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return LockOp{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return LockOp{}, false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return LockOp{Method: fn.Name(), Recv: sel.X}, true
	}
	return LockOp{}, false
}

// Class canonicalizes the mutex receiver expression to a stable name
// usable across packages:
//
//	s.mu.Lock()   (s *storage.Store)   → lbsq/internal/storage.Store.mu
//	db.mu.Lock()  (method on *DB)      → lbsq.DB.mu
//	st.Lock()     (Store embeds Mutex) → lbsq/internal/storage.Store
//	globalMu.Lock()  (package var)     → lbsq/internal/x.globalMu
//	mu.Lock()     (local var)          → lbsq/internal/x.f.mu
//
// enclosing is the name of the function being walked (for local-var
// classes). Returns "" when the expression cannot be resolved to a
// stable identity (e.g. a mutex reached through an interface).
func Class(info *types.Info, enclosing string, recv ast.Expr) string {
	recv = unwrap(recv)
	switch e := recv.(type) {
	case *ast.SelectorExpr:
		obj := info.Uses[e.Sel]
		v, ok := obj.(*types.Var)
		if !ok {
			return ""
		}
		if !v.IsField() {
			// Package-qualified variable: pkgname.GlobalMu.
			if v.Pkg() != nil {
				return v.Pkg().Path() + "." + v.Name()
			}
			return ""
		}
		// Field access: name it after the innermost named owner type.
		if owner := namedOf(info.Types[e.X].Type); owner != nil {
			return typeClass(owner) + "." + v.Name()
		}
		return ""
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		if !ok {
			return ""
		}
		// Promoted method on a struct embedding the mutex: the receiver
		// is the struct value itself, so the class is the type.
		if owner := namedOf(v.Type()); owner != nil && !isSyncMutex(owner) {
			return typeClass(owner)
		}
		if v.Pkg() == nil {
			return ""
		}
		if v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		return v.Pkg().Path() + "." + enclosing + "." + v.Name()
	case *ast.CallExpr, *ast.IndexExpr:
		// Mutex reached through a call or index (e.g. a shard-picker
		// like c.shards[i].mu): name it after the element's owner if we
		// can see a field, handled by the SelectorExpr case above when
		// present; otherwise unknown.
		return ""
	}
	return ""
}

func unwrap(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				e = x.X
				continue
			}
			return e
		default:
			return e
		}
	}
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func typeClass(n *types.Named) string {
	if n.Obj().Pkg() == nil {
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

func isSyncMutex(n *types.Named) bool {
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// FuncKey returns the cross-package fact key of a declared function
// (analysis.ObjectKey of its types.Func), or "" if unresolved.
func FuncKey(info *types.Info, fn *ast.FuncDecl) string {
	if obj, ok := info.Defs[fn.Name].(*types.Func); ok {
		return analysis.ObjectKey(obj)
	}
	return ""
}

// Callee resolves the static callee of a call: a declared function,
// method, or package-level function from any package. Dynamic calls —
// func values, interface methods — return nil; analyzers treat those
// conservatively via facts they cannot have.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		if fn == nil {
			return nil
		}
		// An interface method has no body anywhere we can see; its
		// FullName would never match a fact key.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if types.IsInterface(sig.Recv().Type()) {
				return nil
			}
		}
		return fn
	case *ast.IndexExpr:
		// Generic instantiation f[T](...).
		if id, ok := fun.X.(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// Hooks receives the events of a critical-section walk.
type Hooks struct {
	// Acquire fires on mu.Lock / mu.RLock. class may be "" (unresolved).
	Acquire func(class string, read bool, pos token.Pos)
	// Release fires on a non-deferred mu.Unlock / mu.RUnlock.
	Release func(class string, read bool)
	// Blocking fires on an intrinsically blocking construct: channel
	// send/receive, range over a channel, select without a default.
	Blocking func(pos token.Pos, what string)
	// Call fires on every non-mutex call (including deferred calls and
	// calls inside immediately-invoked literals).
	Call func(call *ast.CallExpr, pos token.Pos)
}

// Walk visits fn's body in source order, firing Hooks. Goroutine
// bodies and non-invoked function literals are skipped: they do not
// run while the walked function holds its locks (any lock they take
// themselves is analyzed at their own declaration only if named).
func Walk(info *types.Info, enclosing string, body *ast.BlockStmt, h Hooks) {
	w := &walker{info: info, enclosing: enclosing, h: h}
	w.stmt(body)
}

type walker struct {
	info      *types.Info
	enclosing string
	h         Hooks
}

func (w *walker) stmt(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// The spawned goroutine does not run under the caller's
			// locks; spawning itself does not block.
			return false
		case *ast.DeferStmt:
			// Deferred unlocks pin the lock to function end; other
			// deferred calls are visited in place (see package doc).
			if op, ok := lockOpOf(w.info, n.Call); ok {
				_ = op // deferred Lock/Unlock: no event either way
				return false
			}
			w.call(n.Call)
			return false
		case *ast.FuncLit:
			// Visited only via the IIFE path in call().
			return false
		case *ast.SelectStmt:
			w.selectStmt(n)
			return false
		case *ast.SendStmt:
			if w.h.Blocking != nil {
				w.h.Blocking(n.Arrow, "channel send")
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && w.h.Blocking != nil {
				w.h.Blocking(n.OpPos, "channel receive")
			}
			return true
		case *ast.RangeStmt:
			if t := w.info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok && w.h.Blocking != nil {
					w.h.Blocking(n.For, "range over channel")
				}
			}
			return true
		case *ast.CallExpr:
			w.call(n)
			return false
		}
		return true
	})
}

func (w *walker) call(call *ast.CallExpr) {
	// Arguments evaluate before the call.
	for _, arg := range call.Args {
		w.stmt(arg)
	}
	if op, ok := lockOpOf(w.info, call); ok {
		class := Class(w.info, w.enclosing, op.Recv)
		switch op.Method {
		case "Lock", "RLock":
			if w.h.Acquire != nil {
				w.h.Acquire(class, op.Method == "RLock", call.Pos())
			}
		case "Unlock", "RUnlock":
			if w.h.Release != nil {
				w.h.Release(class, op.Method == "RUnlock")
			}
		}
		return
	}
	// Immediately-invoked function literal: its body runs here.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.stmt(lit.Body)
		return
	}
	w.stmt(call.Fun)
	if w.h.Call != nil {
		w.h.Call(call, call.Pos())
	}
}

func (w *walker) selectStmt(sel *ast.SelectStmt) {
	hasDefault := false
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault && w.h.Blocking != nil {
		w.h.Blocking(sel.Select, "select without default")
	}
	// Walk the clause bodies. The comm statements themselves never fire
	// channel-op Blocking events: with a default the select is
	// non-blocking, and without one the select-level event above
	// already accounts for it.
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm != nil {
			w.visitCommCalls(cc.Comm)
		}
		for _, s := range cc.Body {
			w.stmt(s)
		}
	}
}

// visitCommCalls visits calls nested in a select communication clause
// without re-triggering channel-op Blocking events (the select already
// decided whether those block).
func (w *walker) visitCommCalls(comm ast.Stmt) {
	ast.Inspect(comm, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, isLock := lockOpOf(w.info, call); !isLock && w.h.Call != nil {
				if _, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); !isLit {
					w.h.Call(call, call.Pos())
				}
			}
			return true
		}
		return true
	})
}

func lockOpOf(info *types.Info, call *ast.CallExpr) (LockOp, bool) {
	return MutexOp(info, call)
}
