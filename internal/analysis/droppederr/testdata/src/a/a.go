// Fixture for the droppederr analyzer. The guarded surface is matched
// by receiver type name, so the mocks here stand in for the real
// lbsq.DB, lbsq.RemoteClient, shard.Cluster, and the persistence layer
// (storage.Store, wal.Log, storage.PageFile).
package a

type DB struct{}

func (*DB) Query() error      { return nil }
func (*DB) Get() (int, error) { return 0, nil }
func (*DB) Close() error      { return nil }

type Cluster struct{}

func (*Cluster) Count() (int, error) { return 0, nil }

type Store struct{}

func (*Store) Close() error { return nil }

type Other struct{}

func (*Other) Query() error { return nil }
func (*Other) Close() error { return nil }

func drops(db *DB, c *Cluster, o *Other) {
	db.Query()       // want `result of DB\.Query is discarded`
	go db.Query()    // want `go statement discards the error of DB\.Query`
	defer db.Query() // want `defer statement discards the error of DB\.Query`
	n, _ := db.Get() // want `error of DB\.Get assigned to blank identifier`
	_ = n
	m, _ := c.Count() // want `error of Cluster\.Count assigned to blank identifier`
	_ = m
	o.Query() // unguarded receiver type: allowed.
	if err := db.Query(); err != nil {
		panic(err) // handled: allowed.
	}
	db.Query() //lbsq:nocheck droppederr
}

// closes covers the persistence surface: a dropped Close error can hide
// an unflushed WAL tail, so every discard form is flagged.
func closes(db *DB, s *Store, o *Other) {
	db.Close()       // want `result of DB\.Close is discarded`
	defer db.Close() // want `defer statement discards the error of DB\.Close`
	s.Close()        // want `result of Store\.Close is discarded`
	defer s.Close()  // want `defer statement discards the error of Store\.Close`
	o.Close()        // unguarded receiver type: allowed.
	if err := db.Close(); err != nil {
		panic(err) // handled: allowed.
	}
}

// legacyQuery mirrors the shard package's legacy adapter: its
// func-typed run field is part of the guarded surface, so dropping the
// field call's error is flagged like a method call's.
type legacyQuery struct {
	run func() (int, error)
}

func fields(q legacyQuery, o Other) {
	v, _ := q.run() // want `error of legacyQuery\.run assigned to blank identifier`
	_ = v
	q.run() // want `result of legacyQuery\.run is discarded`
	if w, err := q.run(); err == nil {
		_ = w // handled: allowed.
	}
	_ = o // field-free type: no guarded fields to flag.
}
