package droppederr_test

import (
	"testing"

	"lbsq/internal/analysis/analysistest"
	"lbsq/internal/analysis/droppederr"
)

func TestDroppedErr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), droppederr.Analyzer, "a")
}
