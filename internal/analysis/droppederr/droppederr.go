// Package droppederr defines an analyzer that flags ignored errors
// from the lbsq query surface.
//
// The PR 2 API redesign made every query path error-returning: DB,
// RemoteClient, and shard.Cluster methods report context cancellation
// and transport failures through their final error result. Dropping
// that error — calling a query as a bare statement, or assigning the
// error to the blank identifier — silently converts a cancelled or
// failed query into an empty result, exactly the failure mode the
// redesign exists to prevent.
//
// The analyzer flags, for methods on the configured receiver types
// whose last result is an error:
//   - expression statements (all results discarded),
//   - go / defer statements (results always discarded),
//   - assignments whose error position is the blank identifier.
//
// The durable-store PR extended the guarded surface to the persistence
// layer (Store, Log, PageFile): a discarded Close error there can mean
// an unflushed WAL tail — acknowledged writes silently lost — so
// `defer db.Close()` is flagged just like a dropped query error.
//
// Compatibility shims that deliberately swallow the error must carry a
// //lbsq:nocheck droppederr comment explaining the contract.
package droppederr

import (
	"go/ast"
	"go/types"

	"lbsq/internal/analysis"
)

// Analyzer is the droppederr analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "droppederr",
	Doc:  "flag ignored errors from DB/RemoteClient/Cluster query methods and Store/Log/PageFile persistence methods",
	Run:  run,
}

// receiverNames are the named types whose error-returning methods form
// the guarded query and persistence surface. Matching is by type name
// so that fixture packages (and future facades) are covered without
// import cycles.
var receiverNames = map[string]bool{
	"DB":           true,
	"RemoteClient": true,
	"Cluster":      true,
	"Store":        true,
	"Log":          true,
	"PageFile":     true,
	"legacyQuery":  true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, ok := guardedCall(pass, call); ok {
						pass.Reportf(call.Pos(), "result of %s is discarded, dropping its error; handle the error or annotate with //lbsq:nocheck droppederr", name)
					}
				}
			case *ast.GoStmt:
				if name, ok := guardedCall(pass, n.Call); ok {
					pass.Reportf(n.Call.Pos(), "go statement discards the error of %s; call it in a closure and handle the error", name)
				}
			case *ast.DeferStmt:
				if name, ok := guardedCall(pass, n.Call); ok {
					pass.Reportf(n.Call.Pos(), "defer statement discards the error of %s; call it in a closure and handle the error", name)
				}
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags `..., _ := guarded(...)` where the blank discards
// the call's error result.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	// Only the single-call multi-value form can discard an error
	// positionally: x, err := f().
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, errPos, ok := guardedCallErrPos(pass, call)
	if !ok || errPos >= len(as.Lhs) {
		return
	}
	if id, ok := as.Lhs[errPos].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(id.Pos(), "error of %s assigned to blank identifier; handle the error or annotate with //lbsq:nocheck droppederr", name)
	}
}

// guardedCall reports whether call is a method call on a guarded
// receiver type returning an error, and the method's display name.
func guardedCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	name, _, ok := guardedCallErrPos(pass, call)
	return name, ok
}

// guardedCallErrPos additionally returns the index of the error result.
func guardedCallErrPos(pass *analysis.Pass, call *ast.CallExpr) (string, int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil {
		return "", 0, false
	}
	switch selection.Kind() {
	case types.MethodVal:
	case types.FieldVal:
		// Func-typed fields on guarded receivers (the legacyQuery
		// adapter's run hook) are part of the guarded surface too.
		if _, ok := selection.Obj().Type().Underlying().(*types.Signature); !ok {
			return "", 0, false
		}
	default:
		return "", 0, false
	}
	recv := selection.Recv()
	named := namedOf(recv)
	if named == nil || !receiverNames[named.Obj().Name()] {
		return "", 0, false
	}
	sig, ok := selection.Obj().Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", 0, false
	}
	last := sig.Results().Len() - 1
	if !isErrorType(sig.Results().At(last).Type()) {
		return "", 0, false
	}
	return named.Obj().Name() + "." + selection.Obj().Name(), last, true
}

func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }
