package floatcmp_test

import (
	"testing"

	"lbsq/internal/analysis/analysistest"
	"lbsq/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), floatcmp.Analyzer, "a")
}
