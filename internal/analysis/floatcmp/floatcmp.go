// Package floatcmp defines an analyzer that forbids raw == and !=
// on floating-point operands.
//
// The validity-region algorithms rest on epsilon-tolerant geometric
// predicates (geom.Eps): a raw float equality silently reintroduces
// the boundary-noise bugs Lemmas 3.1/3.2 are proved to exclude.
// Comparisons must go through the approved helpers in
// internal/geom/cmp.go — Eq/Zero for tolerant comparison, ExactEq/
// ExactZero/SamePoint when bit-exact comparison is the intended
// semantics (sort comparators, sentinels, tie detection).
//
// Allowed without a helper:
//   - x != x and x == x (the IEEE NaN idiom),
//   - the bodies of the helpers themselves (internal/geom/cmp.go),
//   - _test.go files (tests routinely compare exact expected values).
//
// Struct and array equality is flagged too when the compared type
// contains a floating-point field (e.g. geom.Point), since it desugars
// to the same raw comparisons.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lbsq/internal/analysis"
)

// Analyzer is the floatcmp analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "forbid raw ==/!= on float64 values outside the geom epsilon helpers",
	Run:  run,
}

// allowedFile is the one file whose function bodies may compare floats
// directly: the approved helpers themselves.
const allowedFile = "internal/geom/cmp.go"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") || isAllowedFile(name) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			t := pass.TypesInfo.Types[be.X].Type
			if t == nil || !containsFloat(t) {
				return true
			}
			if sameExpr(be.X, be.Y) {
				return true // NaN idiom: x != x
			}
			kind := "floating-point"
			if _, isBasic := t.Underlying().(*types.Basic); !isBasic {
				kind = "float-containing " + t.String()
			}
			pass.Reportf(be.OpPos, "raw %s comparison of %s values; use geom.Eq/Zero (tolerant) or geom.ExactEq/ExactZero/SamePoint (intentionally exact)", be.Op, kind)
			return true
		})
	}
	return nil
}

func isAllowedFile(name string) bool {
	return strings.HasSuffix(name, allowedFile)
}

// containsFloat reports whether comparing two values of type t compares
// floating-point representations: floats and complexes themselves,
// and structs/arrays with float-containing elements.
func containsFloat(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0 && u.Info()&types.IsUntyped == 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsFloat(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return containsFloat(u.Elem())
	}
	return false
}

// sameExpr reports whether two expressions are syntactically identical
// simple operands (identifiers or selector chains), covering the
// x != x NaN test without a full structural comparison.
func sameExpr(a, b ast.Expr) bool {
	return flatName(a) != "" && flatName(a) == flatName(b)
}

func flatName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := flatName(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.ParenExpr:
		return flatName(e.X)
	}
	return ""
}
