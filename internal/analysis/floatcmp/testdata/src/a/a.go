// Fixture for the floatcmp analyzer.
package a

type Point struct{ X, Y float64 }

type intPair struct{ A, B int }

func compare(a, b float64, p, q Point, m, n int, ip, iq intPair) bool {
	if a == b { // want `raw == comparison of floating-point values`
		return true
	}
	if a != b { // want `raw != comparison of floating-point values`
		return false
	}
	if p == q { // want `raw == comparison of float-containing a\.Point values`
		return true
	}
	if a != a { // NaN idiom: allowed.
		return false
	}
	if m == n || ip == iq { // integer comparisons: allowed.
		return true
	}
	//lbsq:nocheck floatcmp
	return a == b
}
