// Package nn implements nearest-neighbor search over the R*-tree: the
// depth-first branch-and-bound algorithm of [RKV95], the optimal
// best-first ("distance browsing") algorithm of [HS99], and an
// incremental neighbor iterator used by the Voronoi-cell construction.
//
// All algorithms run against the rtree.Index seam — the pointer tree
// and the flat arena layout interchangeably — and count node accesses
// through Index.Visit so the experiments report the same NA/PA metrics
// as the paper regardless of layout.
package nn

import (
	"math"
	"sync"

	"lbsq/internal/geom"
	"lbsq/internal/rtree"
)

// Neighbor is a result of a nearest-neighbor query.
type Neighbor struct {
	Item rtree.Item
	Dist float64
}

// pqEntry is a priority-queue element: either an R-tree node or a data
// item, keyed by (squared) distance from the query point.
type pqEntry struct {
	key  float64
	node bool // node entry (ref set) vs item entry (item set)
	ref  rtree.NodeRef
	item rtree.Item
}

// pq is a typed binary min-heap of pqEntry. The sift operations follow
// container/heap's algorithm exactly (same comparison and swap order),
// so pop order — and therefore node-access counts — are identical to
// the previous container/heap implementation, without the interface
// boxing heap.Push forces on every entry.
type pq []pqEntry

func (q pq) less(i, j int) bool {
	// Exact comparator: tolerant comparison breaks strict weak order.
	if !geom.ExactEq(q[i].key, q[j].key) {
		return q[i].key < q[j].key
	}
	// Tie-break: items before nodes so equal-distance results surface
	// deterministically.
	return !q[i].node && q[j].node
}

func (q *pq) push(e pqEntry) {
	*q = append(*q, e)
	q.up(len(*q) - 1)
}

func (q *pq) pop() pqEntry {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	q.down(0, n)
	e := h[n]
	*q = h[:n]
	return e
}

func (q pq) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !q.less(j, i) {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
}

func (q pq) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && q.less(j2, j1) {
			j = j2 // = 2*i + 2  // right child
		}
		if !q.less(j, i) {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
}

// Browser incrementally reports the data items nearest to a query point
// in non-decreasing distance order [HS99]. It accesses only the nodes
// whose MBRs are closer than the next reported neighbor — the optimal
// node-access behaviour.
type Browser struct {
	ix   rtree.Index
	q    geom.Point
	heap pq
}

// NewBrowser starts distance browsing from q.
func NewBrowser(ix rtree.Index, q geom.Point) *Browser {
	b := &Browser{ix: ix, q: q}
	if root := ix.RootRef(); root.Valid() {
		b.heap = pq{{key: ix.RefRect(root).MinDist2(q), node: true, ref: root}}
	}
	return b
}

// Next returns the next nearest item and its distance, or ok=false when
// the dataset is exhausted.
func (b *Browser) Next() (Neighbor, bool) {
	for len(b.heap) > 0 {
		e := b.heap.pop()
		if !e.node {
			return Neighbor{Item: e.item, Dist: math.Sqrt(e.key)}, true
		}
		expand(b.ix, &b.heap, e.ref, b.q)
	}
	return Neighbor{}, false
}

// expand visits a node and pushes its entries keyed by (squared)
// distance from q.
//
//lbsq:hotpath
func expand(ix rtree.Index, h *pq, r rtree.NodeRef, q geom.Point) {
	ix.Visit(r)
	n := ix.RefFanout(r)
	if ix.RefLeaf(r) {
		for i := 0; i < n; i++ {
			it := ix.RefItem(r, i)
			h.push(pqEntry{key: it.P.Dist2(q), item: it})
		}
		return
	}
	for i := 0; i < n; i++ {
		h.push(pqEntry{key: ix.RefChildRect(r, i).MinDist2(q), node: true, ref: ix.RefChild(r, i)})
	}
}

// KNearest returns the k nearest neighbors of q using best-first search
// [HS99], ordered by increasing distance. Fewer than k are returned only
// if the dataset is smaller than k.
func KNearest(ix rtree.Index, q geom.Point, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	return KNearestInto(ix, q, k, make([]Neighbor, 0, k))
}

// nnScratch is the reusable best-first state for KNearestInto.
type nnScratch struct {
	heap pq
}

var nnPool = sync.Pool{New: func() interface{} {
	return &nnScratch{heap: make(pq, 0, 512)}
}}

// KNearestInto is KNearest appending into a caller-supplied slice
// (reset to length 0 first): with a warm pool and a dst with capacity,
// the whole query performs zero heap allocations.
//
//lbsq:hotpath
func KNearestInto(ix rtree.Index, q geom.Point, k int, dst []Neighbor) []Neighbor {
	dst = dst[:0]
	if k <= 0 {
		return dst
	}
	root := ix.RootRef()
	if !root.Valid() {
		return dst
	}
	sc := nnPool.Get().(*nnScratch)
	h := sc.heap[:0]
	h.push(pqEntry{key: ix.RefRect(root).MinDist2(q), node: true, ref: root})
	for len(h) > 0 && len(dst) < k {
		e := h.pop()
		if !e.node {
			dst = append(dst, Neighbor{Item: e.item, Dist: math.Sqrt(e.key)})
			continue
		}
		expand(ix, &h, e.ref, q)
	}
	sc.heap = h
	nnPool.Put(sc)
	return dst
}

// Nearest returns the single nearest neighbor of q, and ok=false on an
// empty tree.
func Nearest(ix rtree.Index, q geom.Point) (Neighbor, bool) {
	res := KNearest(ix, q, 1)
	if len(res) == 0 {
		return Neighbor{}, false
	}
	return res[0], true
}

// KNearestDepthFirst returns the k nearest neighbors using the
// depth-first branch-and-bound algorithm of [RKV95]: entries in each
// node are visited in mindist order and subtrees are pruned when their
// mindist exceeds the current k-th neighbor distance. It visits at least
// as many nodes as best-first search; both are kept for the ablation
// benchmarks.
func KNearestDepthFirst(ix rtree.Index, q geom.Point, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	best := &kBest{k: k}
	if root := ix.RootRef(); root.Valid() {
		dfVisit(ix, root, q, best)
	}
	return best.sorted()
}

func dfVisit(ix rtree.Index, r rtree.NodeRef, q geom.Point, best *kBest) {
	ix.Visit(r)
	if ix.RefLeaf(r) {
		for i, n := 0, ix.RefFanout(r); i < n; i++ {
			it := ix.RefItem(r, i)
			best.offer(Neighbor{Item: it, Dist: it.P.Dist(q)})
		}
		return
	}
	fan := ix.RefFanout(r)
	order := make([]int, fan)
	keys := make([]float64, fan)
	for i := 0; i < fan; i++ {
		order[i] = i
		keys[i] = ix.RefChildRect(r, i).MinDist2(q)
	}
	// Insertion sort by mindist (fanouts are small relative to sort cost).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && keys[order[j]] < keys[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, idx := range order {
		if best.full() && keys[idx] >= best.worst2() {
			break // remaining entries are at least as far
		}
		dfVisit(ix, ix.RefChild(r, idx), q, best)
	}
}

// kBest maintains the k closest neighbors seen so far as a max-heap.
type kBest struct {
	k    int
	heap []Neighbor // max-heap by Dist
}

func (b *kBest) full() bool { return len(b.heap) >= b.k }

func (b *kBest) worst2() float64 {
	if len(b.heap) == 0 {
		return math.Inf(1)
	}
	d := b.heap[0].Dist
	return d * d
}

func (b *kBest) offer(n Neighbor) {
	if len(b.heap) < b.k {
		b.heap = append(b.heap, n)
		b.up(len(b.heap) - 1)
		return
	}
	if n.Dist >= b.heap[0].Dist {
		return
	}
	b.heap[0] = n
	b.down(0)
}

func (b *kBest) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if b.heap[p].Dist >= b.heap[i].Dist {
			return
		}
		b.heap[p], b.heap[i] = b.heap[i], b.heap[p]
		i = p
	}
}

func (b *kBest) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(b.heap) && b.heap[l].Dist > b.heap[big].Dist {
			big = l
		}
		if r < len(b.heap) && b.heap[r].Dist > b.heap[big].Dist {
			big = r
		}
		if big == i {
			return
		}
		b.heap[i], b.heap[big] = b.heap[big], b.heap[i]
		i = big
	}
}

func (b *kBest) sorted() []Neighbor {
	out := append([]Neighbor(nil), b.heap...)
	// Simple sort by distance; k is small.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Dist < out[j-1].Dist; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
