// Package nn implements nearest-neighbor search over the R*-tree: the
// depth-first branch-and-bound algorithm of [RKV95], the optimal
// best-first ("distance browsing") algorithm of [HS99], and an
// incremental neighbor iterator used by the Voronoi-cell construction.
//
// All algorithms count node accesses through rtree.Tree.CountAccess so
// the experiments report the same NA/PA metrics as the paper.
package nn

import (
	"container/heap"
	"math"

	"lbsq/internal/geom"
	"lbsq/internal/rtree"
)

// Neighbor is a result of a nearest-neighbor query.
type Neighbor struct {
	Item rtree.Item
	Dist float64
}

// pqEntry is a priority-queue element: either an R-tree node or a data
// item, keyed by (squared) distance from the query point.
type pqEntry struct {
	key  float64
	node *rtree.Node // nil for item entries
	item rtree.Item
}

type pq []pqEntry

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	// Exact comparator: tolerant comparison breaks strict weak order.
	if !geom.ExactEq(q[i].key, q[j].key) {
		return q[i].key < q[j].key
	}
	// Tie-break: items before nodes so equal-distance results surface
	// deterministically.
	return q[i].node == nil && q[j].node != nil
}
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqEntry)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Browser incrementally reports the data items nearest to a query point
// in non-decreasing distance order [HS99]. It accesses only the nodes
// whose MBRs are closer than the next reported neighbor — the optimal
// node-access behaviour.
type Browser struct {
	tree *rtree.Tree
	q    geom.Point
	heap pq
}

// NewBrowser starts distance browsing from q.
func NewBrowser(t *rtree.Tree, q geom.Point) *Browser {
	b := &Browser{tree: t, q: q}
	root := t.Root()
	b.heap = pq{{key: root.Rect().MinDist2(q), node: root}}
	heap.Init(&b.heap)
	return b
}

// Next returns the next nearest item and its distance, or ok=false when
// the dataset is exhausted.
func (b *Browser) Next() (Neighbor, bool) {
	for b.heap.Len() > 0 {
		e := heap.Pop(&b.heap).(pqEntry)
		if e.node == nil {
			return Neighbor{Item: e.item, Dist: math.Sqrt(e.key)}, true
		}
		b.tree.CountAccess(e.node)
		if e.node.Leaf() {
			for _, it := range e.node.Items() {
				heap.Push(&b.heap, pqEntry{key: it.P.Dist2(b.q), item: it})
			}
			continue
		}
		for _, c := range e.node.Children() {
			heap.Push(&b.heap, pqEntry{key: c.Rect().MinDist2(b.q), node: c})
		}
	}
	return Neighbor{}, false
}

// KNearest returns the k nearest neighbors of q using best-first search
// [HS99], ordered by increasing distance. Fewer than k are returned only
// if the dataset is smaller than k.
func KNearest(t *rtree.Tree, q geom.Point, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	b := NewBrowser(t, q)
	out := make([]Neighbor, 0, k)
	for len(out) < k {
		nb, ok := b.Next()
		if !ok {
			break
		}
		out = append(out, nb)
	}
	return out
}

// Nearest returns the single nearest neighbor of q, and ok=false on an
// empty tree.
func Nearest(t *rtree.Tree, q geom.Point) (Neighbor, bool) {
	res := KNearest(t, q, 1)
	if len(res) == 0 {
		return Neighbor{}, false
	}
	return res[0], true
}

// KNearestDepthFirst returns the k nearest neighbors using the
// depth-first branch-and-bound algorithm of [RKV95]: entries in each
// node are visited in mindist order and subtrees are pruned when their
// mindist exceeds the current k-th neighbor distance. It visits at least
// as many nodes as best-first search; both are kept for the ablation
// benchmarks.
func KNearestDepthFirst(t *rtree.Tree, q geom.Point, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	best := &kBest{k: k}
	dfVisit(t, t.Root(), q, best)
	return best.sorted()
}

func dfVisit(t *rtree.Tree, n *rtree.Node, q geom.Point, best *kBest) {
	t.CountAccess(n)
	if n.Leaf() {
		for _, it := range n.Items() {
			best.offer(Neighbor{Item: it, Dist: it.P.Dist(q)})
		}
		return
	}
	children := n.Children()
	order := make([]int, len(children))
	keys := make([]float64, len(children))
	for i, c := range children {
		order[i] = i
		keys[i] = c.Rect().MinDist2(q)
	}
	// Insertion sort by mindist (fanouts are small relative to sort cost).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && keys[order[j]] < keys[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, idx := range order {
		if best.full() && keys[idx] >= best.worst2() {
			break // remaining entries are at least as far
		}
		dfVisit(t, children[idx], q, best)
	}
}

// kBest maintains the k closest neighbors seen so far as a max-heap.
type kBest struct {
	k    int
	heap []Neighbor // max-heap by Dist
}

func (b *kBest) full() bool { return len(b.heap) >= b.k }

func (b *kBest) worst2() float64 {
	if len(b.heap) == 0 {
		return math.Inf(1)
	}
	d := b.heap[0].Dist
	return d * d
}

func (b *kBest) offer(n Neighbor) {
	if len(b.heap) < b.k {
		b.heap = append(b.heap, n)
		b.up(len(b.heap) - 1)
		return
	}
	if n.Dist >= b.heap[0].Dist {
		return
	}
	b.heap[0] = n
	b.down(0)
}

func (b *kBest) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if b.heap[p].Dist >= b.heap[i].Dist {
			return
		}
		b.heap[p], b.heap[i] = b.heap[i], b.heap[p]
		i = p
	}
}

func (b *kBest) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(b.heap) && b.heap[l].Dist > b.heap[big].Dist {
			big = l
		}
		if r < len(b.heap) && b.heap[r].Dist > b.heap[big].Dist {
			big = r
		}
		if big == i {
			return
		}
		b.heap[i], b.heap[big] = b.heap[big], b.heap[i]
		i = big
	}
}

func (b *kBest) sorted() []Neighbor {
	out := append([]Neighbor(nil), b.heap...)
	// Simple sort by distance; k is small.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Dist < out[j-1].Dist; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
