package nn

import (
	"math/rand"
	"sort"
	"testing"

	"lbsq/internal/geom"
	"lbsq/internal/rtree"
)

func buildTree(rng *rand.Rand, n int) (*rtree.Tree, []rtree.Item) {
	items := make([]rtree.Item, n)
	for i := range items {
		items[i] = rtree.Item{ID: int64(i), P: geom.Pt(rng.Float64(), rng.Float64())}
	}
	return rtree.BulkLoad(items, rtree.Options{PageSize: 512}, 0.7), items
}

func bruteKNN(items []rtree.Item, q geom.Point, k int) []Neighbor {
	all := make([]Neighbor, len(items))
	for i, it := range items {
		all[i] = Neighbor{Item: it, Dist: it.P.Dist(q)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Item.ID < all[j].Item.ID
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func sameNeighborSet(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	// Compare distances (ties may reorder IDs).
	for i := range a {
		if !almostEq(a[i].Dist, b[i].Dist) {
			return false
		}
	}
	return true
}

func almostEq(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tree, items := buildTree(rng, 3000)
	for trial := 0; trial < 200; trial++ {
		q := geom.Pt(rng.Float64(), rng.Float64())
		got, ok := Nearest(tree, q)
		if !ok {
			t.Fatal("Nearest failed")
		}
		want := bruteKNN(items, q, 1)[0]
		if !almostEq(got.Dist, want.Dist) {
			t.Fatalf("q=%v: got dist %v want %v", q, got.Dist, want.Dist)
		}
	}
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tree, items := buildTree(rng, 2000)
	for _, k := range []int{1, 2, 5, 10, 50, 100} {
		for trial := 0; trial < 30; trial++ {
			q := geom.Pt(rng.Float64(), rng.Float64())
			got := KNearest(tree, q, k)
			want := bruteKNN(items, q, k)
			if !sameNeighborSet(got, want) {
				t.Fatalf("k=%d q=%v: mismatch", k, q)
			}
			// Results must be sorted by distance.
			for i := 1; i < len(got); i++ {
				if got[i].Dist < got[i-1].Dist {
					t.Fatalf("k=%d: unsorted results", k)
				}
			}
		}
	}
}

func TestDepthFirstMatchesBestFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tree, items := buildTree(rng, 2000)
	for _, k := range []int{1, 3, 10, 30} {
		for trial := 0; trial < 30; trial++ {
			q := geom.Pt(rng.Float64(), rng.Float64())
			df := KNearestDepthFirst(tree, q, k)
			want := bruteKNN(items, q, k)
			if !sameNeighborSet(df, want) {
				t.Fatalf("depth-first k=%d q=%v mismatch", k, q)
			}
		}
	}
}

func TestBestFirstNeverMoreAccessesThanDepthFirst(t *testing.T) {
	// [HS99] is I/O-optimal: it cannot access more nodes than [RKV95].
	rng := rand.New(rand.NewSource(4))
	tree, _ := buildTree(rng, 5000)
	for trial := 0; trial < 50; trial++ {
		q := geom.Pt(rng.Float64(), rng.Float64())
		tree.ResetAccesses()
		KNearest(tree, q, 10)
		bf := tree.NodeAccesses()
		tree.ResetAccesses()
		KNearestDepthFirst(tree, q, 10)
		df := tree.NodeAccesses()
		if bf > df {
			t.Fatalf("best-first %d > depth-first %d accesses", bf, df)
		}
	}
}

func TestBrowserOrderAndCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tree, items := buildTree(rng, 500)
	q := geom.Pt(0.3, 0.7)
	b := NewBrowser(tree, q)
	var dists []float64
	count := 0
	for {
		nb, ok := b.Next()
		if !ok {
			break
		}
		dists = append(dists, nb.Dist)
		count++
	}
	if count != len(items) {
		t.Fatalf("browser returned %d of %d items", count, len(items))
	}
	if !sort.Float64sAreSorted(dists) {
		t.Fatal("browser output not in distance order")
	}
}

func TestKNearestEdgeCases(t *testing.T) {
	empty := rtree.NewDefault()
	if _, ok := Nearest(empty, geom.Pt(0, 0)); ok {
		t.Error("Nearest on empty tree must fail")
	}
	if got := KNearest(empty, geom.Pt(0, 0), 5); len(got) != 0 {
		t.Error("KNearest on empty tree must be empty")
	}
	rng := rand.New(rand.NewSource(6))
	tree, items := buildTree(rng, 10)
	if got := KNearest(tree, geom.Pt(0.5, 0.5), 100); len(got) != len(items) {
		t.Errorf("k > n returned %d", len(got))
	}
	if got := KNearest(tree, geom.Pt(0.5, 0.5), 0); got != nil {
		t.Error("k=0 must return nil")
	}
	if got := KNearestDepthFirst(tree, geom.Pt(0.5, 0.5), 0); got != nil {
		t.Error("depth-first k=0 must return nil")
	}
}

func TestQueryOnDataPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tree, items := buildTree(rng, 200)
	// Query exactly at a data point: that point is its own NN at dist 0.
	q := items[42].P
	got, _ := Nearest(tree, q)
	if got.Dist != 0 {
		t.Fatalf("NN dist at data point = %v", got.Dist)
	}
}

func TestBestFirstAccessesScaleWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tree, _ := buildTree(rng, 20000)
	q := geom.Pt(0.5, 0.5)
	tree.ResetAccesses()
	KNearest(tree, q, 1)
	na1 := tree.NodeAccesses()
	tree.ResetAccesses()
	KNearest(tree, q, 100)
	na100 := tree.NodeAccesses()
	if na100 < na1 {
		t.Fatalf("k=100 accesses (%d) < k=1 accesses (%d)", na100, na1)
	}
}
