// Package insq implements the influential neighbor set of INSQ [Li+16]
// as a moving-kNN session strategy: instead of the paper's TPkNN
// validity region (an order-k Voronoi cell assembled from many TP
// probes, Sec. 3.2), the server answers one slightly larger
// (k+slack+1)-NN query and remembers
//
//   - the influential set S: the k+slack nearest objects of the query
//     anchor a, and
//   - the guard distance G: the distance from a to the first object
//     NOT in S.
//
// Invariant: every object outside S is at least G from the anchor. The
// set is maintained under updates — an insert closer than G to the
// anchor joins S, an insert at distance ≥ G can be ignored outright,
// and a delete leaves S (a removed non-member only makes the cached
// constraints conservative). While the invariant holds, the exact kNN
// at any position p follows from pure distance arithmetic over S:
//
//	kNN(p) = top-k of S ranked at p, provided
//	    d(p, m_k) + d(p, a) <= G        (ellipse constraint)
//
// because any unseen object u satisfies d(p, u) >= G - d(p, a) by the
// triangle inequality. Verifying a move therefore costs zero node
// accesses and zero allocations (Covers), and repairing the result
// after churn is a re-ranking of at most k+slack points (Repair) — the
// expensive tree traversal happens only when the client escapes the
// ellipse or the set underflows.
//
// The package depends only on geom/nn/rtree; the conversion to a
// client-facing guarded validity region lives in core (GuardedValidity)
// to keep the dependency arrow pointing one way.
package insq

import (
	"fmt"
	"math"

	"lbsq/internal/geom"
	"lbsq/internal/nn"
	"lbsq/internal/rtree"
)

// DefaultSlack returns the default influential-set slack for a k-NN
// session: k extra neighbors (so |S| = 2k), but at least 4 so 1NN
// sessions still get a usable guard distance.
func DefaultSlack(k int) int {
	if k < 4 {
		return 4
	}
	return k
}

// Set is the influential neighbor set of one continuous kNN query.
//
// The first K entries of the backing slice are the current result
// members, ranked by distance to Pos; the remainder are the influential
// non-result neighbors. After any mutating call that reports a change
// (ApplyInsert/ApplyDelete), the ranking is stale and Repair must run
// before the members are served again.
type Set struct {
	// Anchor is the position of the full (k+slack+1)-NN query that
	// built the set; Guard is measured from here.
	Anchor geom.Point
	// Pos is the position the member ranking was last established at
	// (by Build or a successful Repair).
	Pos geom.Point
	// K is the result cardinality.
	K int
	// Guard is the distance from Anchor to the nearest object outside
	// the set — +Inf when the set holds the whole dataset. Objects
	// inserted at distance >= Guard from Anchor can never displace a
	// member anywhere inside the safe region, so they are ignored.
	Guard float64

	all []rtree.Item
}

// Build runs one (k+slack+1)-nearest-neighbor query at q and returns
// the influential set anchored there. It fails only when the dataset
// holds fewer than k objects.
func Build(ix rtree.Index, q geom.Point, k, slack int) (*Set, error) {
	if k <= 0 {
		return nil, fmt.Errorf("insq: non-positive k %d", k)
	}
	if slack < 0 {
		slack = 0
	}
	n := k + slack + 1
	nbs := nn.KNearest(ix, q, n)
	if len(nbs) < k {
		return nil, fmt.Errorf("insq: dataset has fewer than %d points", k)
	}
	s := &Set{Anchor: q, Pos: q, K: k, Guard: math.Inf(1)}
	if len(nbs) == n {
		// The (k+slack+1)-th neighbor is the first object outside the
		// set: its distance is the guard.
		s.Guard = nbs[n-1].Dist
		nbs = nbs[:n-1]
	}
	s.all = make([]rtree.Item, len(nbs))
	for i, nb := range nbs {
		s.all[i] = nb.Item
	}
	return s, nil
}

// Len returns the current size of the influential set.
func (s *Set) Len() int { return len(s.all) }

// Members returns the current k result members, ranked at Pos. The
// slice is a view into the set: valid until the next mutating call.
func (s *Set) Members() []rtree.Item { return s.all[:s.K] }

// Influential returns the non-result influential neighbors (a view,
// like Members).
func (s *Set) Influential() []rtree.Item { return s.all[s.K:] }

// Items returns the whole influential set, members first (a view).
func (s *Set) Items() []rtree.Item { return s.all }

// Covers reports whether the current members are still an exact kNN
// result at p: every member must (weakly) beat every influential
// non-member, and the ellipse constraint d(p, m_k) + d(p, Anchor) <= G
// must hold so no unseen object can intrude. Pure distance arithmetic —
// zero node accesses, zero allocations.
//
//lbsq:hotpath
func (s *Set) Covers(p geom.Point) bool {
	if len(s.all) < s.K {
		return false
	}
	maxM2 := 0.0
	for _, m := range s.all[:s.K] {
		if d2 := p.Dist2(m.P); d2 > maxM2 {
			maxM2 = d2
		}
	}
	if !math.IsInf(s.Guard, 1) && math.Sqrt(maxM2)+p.Dist(s.Anchor) > s.Guard {
		return false
	}
	for _, o := range s.all[s.K:] {
		if p.Dist2(o.P) < maxM2 {
			return false
		}
	}
	return true
}

// Repair re-ranks the set at p and promotes the k nearest entries to
// members, without touching the tree. It returns false — leaving the
// set unusable until a fresh Build — when the set has shrunk below k
// or p has escaped the ellipse in which the set provably contains the
// true kNN; the caller must then re-query.
func (s *Set) Repair(p geom.Point) bool {
	if len(s.all) < s.K {
		return false
	}
	// Insertion sort by distance to p: the set holds at most k+slack
	// (+ a few pending inserts) entries, and recomputing the squared
	// distance per comparison keeps this allocation-free.
	for i := 1; i < len(s.all); i++ {
		for j := i; j > 0 && s.all[j].P.Dist2(p) < s.all[j-1].P.Dist2(p); j-- {
			s.all[j], s.all[j-1] = s.all[j-1], s.all[j]
		}
	}
	s.Pos = p
	return s.Covers(p)
}

// ApplyInsert folds a freshly inserted object into the set. It returns
// true when the set changed (the object landed strictly inside the
// guard distance), in which case the ranking is stale until Repair.
// Inserts at distance >= Guard from the anchor are provably harmless
// and are dropped. Idempotent: re-applying an object already in the set
// is a no-op.
func (s *Set) ApplyInsert(it rtree.Item) bool {
	if !math.IsInf(s.Guard, 1) && it.P.Dist(s.Anchor) >= s.Guard {
		return false
	}
	for _, e := range s.all {
		if e.ID == it.ID {
			return false
		}
	}
	s.all = append(s.all, it)
	return true
}

// ApplyDelete removes an object from the set. It returns true when the
// set changed; the ranking is then stale until Repair. Idempotent.
func (s *Set) ApplyDelete(id int64) bool {
	for i, e := range s.all {
		if e.ID == id {
			copy(s.all[i:], s.all[i+1:])
			s.all = s.all[:len(s.all)-1]
			return true
		}
	}
	return false
}

// SafeRadius returns the radius of a circle around Pos in which no
// object from outside the set can enter the kNN result:
//
//	r = (G - d(Pos, Anchor) - d(Pos, m_k)) / 2
//
// For any p within r of Pos, each member is at most d(Pos, m_k) + r
// away while every unseen object is at least G - d(Pos, Anchor) - r
// away, and the definition of r makes the former never exceed the
// latter. Inside the circle the result can therefore only change by
// trading places with an influential non-member — exactly what the
// member×guard half-plane pairs of core.GuardedValidity rule out, so
// circle ∧ half-planes is a sound client-side validity region (and
// implies the Covers ellipse). Non-positive when the ranking position
// sits on the ellipse boundary; +Inf when the set holds the whole
// dataset.
func (s *Set) SafeRadius() float64 {
	if math.IsInf(s.Guard, 1) {
		return math.Inf(1)
	}
	if len(s.all) < s.K {
		return 0
	}
	dk := 0.0
	for _, m := range s.all[:s.K] {
		if d := s.Pos.Dist(m.P); d > dk {
			dk = d
		}
	}
	return (s.Guard - s.Pos.Dist(s.Anchor) - dk) / 2
}
