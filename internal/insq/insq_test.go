package insq_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"lbsq/internal/core"
	"lbsq/internal/dataset"
	"lbsq/internal/geom"
	"lbsq/internal/insq"
	"lbsq/internal/nn"
	"lbsq/internal/rtree"
)

// sameResult compares two kNN answers as distance multisets from p, so
// equal-distance ties in either order count as the same answer.
func sameResult(p geom.Point, a, b []rtree.Item) bool {
	if len(a) != len(b) {
		return false
	}
	da := make([]float64, len(a))
	db := make([]float64, len(b))
	for i := range a {
		da[i] = a[i].P.Dist(p)
		db[i] = b[i].P.Dist(p)
	}
	sort.Float64s(da)
	sort.Float64s(db)
	for i := range da {
		if !geom.Eq(da[i], db[i]) {
			return false
		}
	}
	return true
}

func exactKNN(ix rtree.Index, p geom.Point, k int) []rtree.Item {
	nbs := nn.KNearest(ix, p, k)
	out := make([]rtree.Item, len(nbs))
	for i, nb := range nbs {
		out[i] = nb.Item
	}
	return out
}

func TestBuildInvariants(t *testing.T) {
	d := dataset.Uniform(2000, 7)
	ix := d.Tree()
	q := geom.Pt(0.41, 0.57)
	const k, slack = 4, 4
	s, err := insq.Build(ix, q, k, slack)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != k+slack {
		t.Fatalf("set size %d, want %d", s.Len(), k+slack)
	}
	if math.IsInf(s.Guard, 1) {
		t.Fatal("guard should be finite on a 2000-point dataset")
	}
	// Every set element is strictly closer than the guard; the exact
	// (k+slack+1)-th neighbor defines it.
	for _, it := range s.Items() {
		if it.P.Dist(q) > s.Guard {
			t.Fatalf("set element %d at %g beyond guard %g", it.ID, it.P.Dist(q), s.Guard)
		}
	}
	want := nn.KNearest(ix, q, k+slack+1)[k+slack].Dist
	if !geom.Eq(s.Guard, want) {
		t.Fatalf("guard %g, want %g", s.Guard, want)
	}
	if !s.Covers(q) {
		t.Fatal("set must cover its own anchor")
	}
	if !sameResult(q, s.Members(), exactKNN(ix, q, k)) {
		t.Fatal("members at anchor differ from exact kNN")
	}
}

func TestBuildSmallDataset(t *testing.T) {
	d := dataset.Uniform(6, 3)
	ix := d.Tree()
	q := geom.Pt(0.5, 0.5)
	s, err := insq.Build(ix, q, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(s.Guard, 1) {
		t.Fatalf("guard %g, want +Inf when the set spans the dataset", s.Guard)
	}
	if s.Len() != 6 {
		t.Fatalf("set size %d, want 6", s.Len())
	}
	// With the whole dataset in the set, every position is covered
	// after a repair.
	p := geom.Pt(0.93, 0.04)
	if !s.Repair(p) {
		t.Fatal("repair must succeed with an infinite guard")
	}
	if !sameResult(p, s.Members(), exactKNN(ix, p, 4)) {
		t.Fatal("members differ from exact kNN")
	}
	if _, err := insq.Build(ix, q, 7, 0); err == nil {
		t.Fatal("want error for k larger than the dataset")
	}
}

// TestCoversIsExact is the central correctness property: wherever
// Covers reports true, the members are the exact kNN (as a distance
// multiset); and wherever the client-facing guarded validity accepts a
// point (half-plane pairs ∧ guard circle), Covers must accept it too.
func TestCoversIsExact(t *testing.T) {
	d := dataset.Uniform(3000, 11)
	ix := d.Tree()
	rng := rand.New(rand.NewSource(99))
	hits := 0
	for trial := 0; trial < 50; trial++ {
		q := geom.Pt(rng.Float64(), rng.Float64())
		k := 1 + rng.Intn(6)
		s, err := insq.Build(ix, q, k, insq.DefaultSlack(k))
		if err != nil {
			t.Fatal(err)
		}
		r := s.SafeRadius()
		if r <= 0 {
			t.Fatalf("trial %d: non-positive safe radius %g at a fresh anchor", trial, r)
		}
		v := core.GuardedValidity(s, d.Universe)
		for probe := 0; probe < 60; probe++ {
			// Mix nearby probes (exercising hits) with far ones.
			scale := r * 4 * rng.Float64()
			a := 2 * math.Pi * rng.Float64()
			p := geom.Pt(q.X+scale*math.Cos(a), q.Y+scale*math.Sin(a))
			in := s.Covers(p)
			if v.Valid(p) && !in {
				t.Fatalf("trial %d: client-valid point %v not covered by the set", trial, p)
			}
			if in {
				hits++
				if !sameResult(p, s.Members(), exactKNN(ix, p, k)) {
					t.Fatalf("trial %d: covered point %v has wrong members", trial, p)
				}
			}
		}
	}
	if hits == 0 {
		t.Fatal("probe cloud never hit the safe region")
	}
}

// TestRepairIsExact drives a random walk: every successful repair must
// leave the members exactly equal to the true kNN at the new position,
// and a failed repair must coincide with leaving the guard ellipse.
func TestRepairIsExact(t *testing.T) {
	d := dataset.Uniform(3000, 13)
	ix := d.Tree()
	rng := rand.New(rand.NewSource(17))
	const k = 4
	q := geom.Pt(0.5, 0.5)
	s, err := insq.Build(ix, q, k, insq.DefaultSlack(k))
	if err != nil {
		t.Fatal(err)
	}
	repaired, rebuilt := 0, 0
	p := q
	for step := 0; step < 400; step++ {
		p = geom.Pt(p.X+(rng.Float64()-0.5)*0.02, p.Y+(rng.Float64()-0.5)*0.02)
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			p = geom.Pt(0.5, 0.5)
		}
		if s.Repair(p) {
			repaired++
			if !sameResult(p, s.Members(), exactKNN(ix, p, k)) {
				t.Fatalf("step %d: repaired members differ from exact kNN", step)
			}
		} else {
			rebuilt++
			if s, err = insq.Build(ix, p, k, insq.DefaultSlack(k)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if repaired == 0 || rebuilt == 0 {
		t.Fatalf("walk exercised only one path: %d repairs, %d rebuilds", repaired, rebuilt)
	}
}

// TestApplyMutations churns the set with inserts and deletes and checks
// that the INSQ invariant keeps repairs exact against a mirror of the
// dataset.
func TestApplyMutations(t *testing.T) {
	d := dataset.Uniform(1500, 23)
	tree := d.Tree()
	rng := rand.New(rand.NewSource(29))
	const k = 3
	q := geom.Pt(0.3, 0.7)
	s, err := insq.Build(tree, q, k, insq.DefaultSlack(k))
	if err != nil {
		t.Fatal(err)
	}
	nextID := int64(1 << 20)
	var added []rtree.Item
	for round := 0; round < 120; round++ {
		if rng.Intn(2) == 0 || len(added) == 0 {
			it := rtree.Item{ID: nextID, P: geom.Pt(rng.Float64(), rng.Float64())}
			nextID++
			tree.Insert(it)
			added = append(added, it)
			changed := s.ApplyInsert(it)
			if !changed && it.P.Dist(s.Anchor) < s.Guard {
				t.Fatalf("round %d: in-guard insert reported no change", round)
			}
		} else {
			i := rng.Intn(len(added))
			it := added[i]
			added = append(added[:i], added[i+1:]...)
			tree.Delete(it)
			s.ApplyDelete(it.ID)
		}
		// Re-applying is a no-op (idempotent drain of a pending log).
		for _, it := range added {
			if it.P.Dist(s.Anchor) < s.Guard && s.ApplyInsert(it) {
				// First application may change the set; the second
				// must not.
				if s.ApplyInsert(it) {
					t.Fatalf("round %d: duplicate insert changed the set", round)
				}
			}
		}
		p := geom.Pt(q.X+(rng.Float64()-0.5)*0.01, q.Y+(rng.Float64()-0.5)*0.01)
		if s.Repair(p) {
			if !sameResult(p, s.Members(), exactKNN(tree, p, k)) {
				t.Fatalf("round %d: post-churn repair differs from exact kNN", round)
			}
		} else {
			if s, err = insq.Build(tree, p, k, insq.DefaultSlack(k)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestGuardedValidity checks the client-facing conversion: the wire
// region must contain the ranking position, every point it deems valid
// must carry the exact kNN, and the encode/decode round trip must
// preserve the guard.
func TestGuardedValidity(t *testing.T) {
	d := dataset.Uniform(2500, 31)
	ix := d.Tree()
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 30; trial++ {
		q := geom.Pt(0.05+0.9*rng.Float64(), 0.05+0.9*rng.Float64())
		k := 1 + rng.Intn(5)
		s, err := insq.Build(ix, q, k, insq.DefaultSlack(k))
		if err != nil {
			t.Fatal(err)
		}
		v := core.GuardedValidity(s, d.Universe)
		if v.GuardRadius <= 0 {
			t.Fatalf("trial %d: fresh guarded validity without a guard circle", trial)
		}
		if !v.Valid(q) {
			t.Fatalf("trial %d: validity rejects its own query point", trial)
		}
		if v.Region.IsEmpty() || !v.Region.Contains(q) {
			t.Fatalf("trial %d: region empty or missing the query point", trial)
		}
		got, err := core.DecodeNN(core.EncodeNN(v))
		if err != nil {
			t.Fatal(err)
		}
		if !geom.Eq(got.GuardRadius, v.GuardRadius) || !geom.SamePoint(got.GuardCenter, v.GuardCenter) {
			t.Fatalf("trial %d: guard lost in the wire round trip", trial)
		}
		for probe := 0; probe < 60; probe++ {
			p := geom.Pt(q.X+(rng.Float64()-0.5)*0.1, q.Y+(rng.Float64()-0.5)*0.1)
			if got.Valid(p) && !sameResult(p, s.Members(), exactKNN(ix, p, k)) {
				t.Fatalf("trial %d: decoded validity accepts %v with a stale result", trial, p)
			}
		}
	}
}

func TestCoversZeroAlloc(t *testing.T) {
	d := dataset.Uniform(500, 41)
	ix := d.Tree()
	s, err := insq.Build(ix, geom.Pt(0.5, 0.5), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Pt(0.5001, 0.5001)
	if got := testing.AllocsPerRun(200, func() { s.Covers(p) }); got != 0 {
		t.Fatalf("Covers allocates %v times per run, want 0", got)
	}
}
