package insq_test

import (
	"math"
	"testing"

	"lbsq/internal/core"
	"lbsq/internal/dataset"
	"lbsq/internal/geom"
	"lbsq/internal/insq"
)

// FuzzInfluentialSet fuzzes the INSQ safe-region properties: for an
// arbitrary dataset seed, query point and k, the guarded validity
// region must contain the query point, and at every probe position the
// region (or the raw Covers test) deems valid, the k members must be
// the exact k nearest neighbors — i.e. the result is order-invariant
// inside the safe region.
func FuzzInfluentialSet(f *testing.F) {
	f.Add(int64(1), 0.5, 0.5, uint8(1), 0.01, 0.0)
	f.Add(int64(7), 0.25, 0.75, uint8(4), -0.02, 0.015)
	f.Add(int64(42), 0.9, 0.1, uint8(8), 0.3, -0.4)
	f.Fuzz(func(t *testing.T, seed int64, qx, qy float64, kRaw uint8, dx, dy float64) {
		if math.IsNaN(qx) || math.IsNaN(qy) || math.IsInf(qx, 0) || math.IsInf(qy, 0) ||
			math.IsNaN(dx) || math.IsNaN(dy) || math.IsInf(dx, 0) || math.IsInf(dy, 0) {
			t.Skip()
		}
		// Clamp the query into the unit universe and k into [1, 16].
		qx = math.Min(1, math.Max(0, qx))
		qy = math.Min(1, math.Max(0, qy))
		k := 1 + int(kRaw%16)
		d := dataset.Uniform(64+int(uint64(seed)%256), seed)
		ix := d.Tree()

		q := geom.Pt(qx, qy)
		s, err := insq.Build(ix, q, k, insq.DefaultSlack(k))
		if err != nil {
			t.Skip() // dataset smaller than k
		}
		if !s.Covers(q) {
			t.Fatalf("set does not cover its own anchor %v", q)
		}
		v := core.GuardedValidity(s, d.Universe)
		if !v.Valid(q) {
			t.Fatalf("guarded validity rejects its own query point %v", q)
		}
		if !v.Region.IsEmpty() && !v.Region.Contains(q) {
			t.Fatalf("guarded region does not contain the query point %v", q)
		}

		// Walk toward (dx, dy) in small steps: everywhere the region
		// claims validity, the members must still be the exact kNN.
		dx = math.Min(1, math.Max(-1, dx))
		dy = math.Min(1, math.Max(-1, dy))
		for i := 1; i <= 8; i++ {
			p := geom.Pt(q.X+dx*float64(i)/8, q.Y+dy*float64(i)/8)
			if s.Covers(p) && !sameResult(p, s.Members(), exactKNN(ix, p, k)) {
				t.Fatalf("covered position %v has a stale result", p)
			}
			if v.Valid(p) && !sameResult(p, s.Members(), exactKNN(ix, p, k)) {
				t.Fatalf("valid position %v has a stale result", p)
			}
		}
	})
}
