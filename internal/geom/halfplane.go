package geom

import "fmt"

// HalfPlane is the set of points p with A·p.X + B·p.Y ≤ C.
type HalfPlane struct {
	A, B, C float64
}

// Bisector returns the half-plane of points at least as close to keep as
// to drop: the perpendicular-bisector half-plane containing keep.
//
// dist(p, keep) ≤ dist(p, drop)
//
//	⇔ 2(drop−keep)·p ≤ |drop|² − |keep|².
//
// If keep and drop coincide the half-plane degenerates to the whole plane
// (A = B = 0, C = 0), which Contains reports as containing everything;
// callers should treat coincident points specially when that matters.
func Bisector(keep, drop Point) HalfPlane {
	return HalfPlane{
		A: 2 * (drop.X - keep.X),
		B: 2 * (drop.Y - keep.Y),
		C: drop.Norm2() - keep.Norm2(),
	}
}

// Eval returns A·p.X + B·p.Y − C: negative inside, zero on the boundary,
// positive outside.
func (h HalfPlane) Eval(p Point) float64 { return h.A*p.X + h.B*p.Y - h.C }

// Contains reports whether p satisfies the half-plane inequality
// (boundary inclusive, within Eps scaled by the normal magnitude).
func (h HalfPlane) Contains(p Point) bool {
	scale := 1 + abs(h.A) + abs(h.B)
	return h.Eval(p) <= Eps*scale
}

// ContainsStrict reports whether p is strictly inside the half-plane.
func (h HalfPlane) ContainsStrict(p Point) bool {
	scale := 1 + abs(h.A) + abs(h.B)
	return h.Eval(p) < -Eps*scale
}

// Degenerate reports whether the half-plane has a zero normal vector.
func (h HalfPlane) Degenerate() bool { return ExactZero(h.A) && ExactZero(h.B) }

// String implements fmt.Stringer.
func (h HalfPlane) String() string {
	return fmt.Sprintf("%.6g*x + %.6g*y <= %.6g", h.A, h.B, h.C)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
