// Package geom provides the 2-D computational-geometry substrate used by
// the location-based query processor: points, rectangles, perpendicular
// bisectors, half-plane intersection over convex polygons, and rectilinear
// regions for window-query validity computation.
//
// All coordinates are float64. Robustness against floating-point noise is
// handled with a small absolute epsilon (Eps); the library targets data
// universes of roughly unit to 10^7 scale, matching the paper's datasets.
package geom

import (
	"fmt"
	"math"
)

// Eps is the absolute tolerance used for coordinate and area comparisons.
const Eps = 1e-9

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + d.
func (p Point) Add(d Point) Point { return Point{p.X + d.X, p.Y + d.Y} }

// Sub returns p − d.
func (p Point) Sub(d Point) Point { return Point{p.X - d.X, p.Y - d.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p · d.
func (p Point) Dot(d Point) float64 { return p.X*d.X + p.Y*d.Y }

// Cross returns the 2-D cross product (z-component) p × d.
func (p Point) Cross(d Point) float64 { return p.X*d.Y - p.Y*d.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean length of p viewed as a vector.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance between p and d.
func (p Point) Dist(d Point) float64 { return math.Hypot(p.X-d.X, p.Y-d.Y) }

// Dist2 returns the squared Euclidean distance between p and d.
func (p Point) Dist2(d Point) float64 {
	dx, dy := p.X-d.X, p.Y-d.Y
	return dx*dx + dy*dy
}

// Unit returns p normalized to unit length. The zero vector is returned
// unchanged.
func (p Point) Unit() Point {
	n := p.Norm()
	if ExactZero(n) {
		return p
	}
	return Point{p.X / n, p.Y / n}
}

// Eq reports whether p and d coincide within Eps in both coordinates.
func (p Point) Eq(d Point) bool {
	return math.Abs(p.X-d.X) <= Eps && math.Abs(p.Y-d.Y) <= Eps
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Lerp returns the point p + t·(d−p).
func (p Point) Lerp(d Point, t float64) Point {
	return Point{p.X + t*(d.X-p.X), p.Y + t*(d.Y-p.Y)}
}
