package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	a, b := Pt(1, 2), Pt(4, 6)
	if got := a.Add(b); got != Pt(5, 8) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != Pt(3, 4) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 16 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != -2 {
		t.Errorf("Cross = %v", got)
	}
	if got := a.Dist(b); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if got := a.Dist2(b); got != 25 {
		t.Errorf("Dist2 = %v", got)
	}
	if got := b.Sub(a).Unit().Norm(); math.Abs(got-1) > Eps {
		t.Errorf("Unit norm = %v", got)
	}
	if !Pt(1, 1).Eq(Pt(1+Eps/2, 1-Eps/2)) {
		t.Error("Eq should tolerate sub-epsilon noise")
	}
	if got := a.Lerp(b, 0.5); got != Pt(2.5, 4) {
		t.Errorf("Lerp = %v", got)
	}
	if got := (Point{}).Unit(); got != (Point{}) {
		t.Errorf("zero Unit = %v", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := R(0, 0, 4, 2)
	if r.Width() != 4 || r.Height() != 2 || r.Area() != 8 || r.Margin() != 6 {
		t.Errorf("extents wrong: %v", r)
	}
	if r.Center() != Pt(2, 1) {
		t.Errorf("Center = %v", r.Center())
	}
	if !r.Contains(Pt(4, 2)) || r.Contains(Pt(4.1, 2)) {
		t.Error("Contains boundary handling wrong")
	}
	if !r.ContainsStrict(Pt(2, 1)) || r.ContainsStrict(Pt(4, 1)) {
		t.Error("ContainsStrict wrong")
	}
	if EmptyRect().Area() != 0 || !EmptyRect().IsEmpty() {
		t.Error("EmptyRect not empty")
	}
	if EmptyRect().Union(r) != r || r.Union(EmptyRect()) != r {
		t.Error("Union with empty")
	}
	if got := RectCenteredAt(Pt(1, 1), 2, 4); got != R(0, -1, 2, 3) {
		t.Errorf("RectCenteredAt = %v", got)
	}
	if got := RectFromPoints(Pt(1, 5), Pt(-2, 3), Pt(0, 7)); got != R(-2, 3, 1, 7) {
		t.Errorf("RectFromPoints = %v", got)
	}
}

func TestRectIntersection(t *testing.T) {
	a, b := R(0, 0, 2, 2), R(1, 1, 3, 3)
	if !a.Intersects(b) {
		t.Error("should intersect")
	}
	if got := a.Intersect(b); got != R(1, 1, 2, 2) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Overlap(b); got != 1 {
		t.Errorf("Overlap = %v", got)
	}
	c := R(5, 5, 6, 6)
	if a.Intersects(c) || !a.Intersect(c).IsEmpty() {
		t.Error("disjoint rects must not intersect")
	}
	// Touching rects intersect (boundary inclusive).
	d := R(2, 0, 4, 2)
	if !a.Intersects(d) {
		t.Error("touching rects should intersect")
	}
	if got := a.Enlargement(b); got != 9-4 {
		t.Errorf("Enlargement = %v", got)
	}
	if !R(0, 0, 10, 10).ContainsRect(a) || a.ContainsRect(b) {
		t.Error("ContainsRect wrong")
	}
}

func TestRectMinMaxDist(t *testing.T) {
	r := R(2, 2, 4, 4)
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(3, 3), 0},            // inside
		{Pt(0, 3), 2},            // left
		{Pt(3, 7), 3},            // above
		{Pt(0, 0), math.Sqrt(8)}, // corner
		{Pt(5, 5), math.Sqrt(2)}, // opposite corner
		{Pt(4, 4), 0},            // on boundary
		{Pt(6, 2), 2},            // right edge level
	}
	for _, c := range cases {
		if got := r.MinDist(c.p); math.Abs(got-c.want) > Eps {
			t.Errorf("MinDist(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := r.MaxDist(Pt(0, 0)); math.Abs(got-math.Sqrt(32)) > Eps {
		t.Errorf("MaxDist = %v", got)
	}
	if got := r.MaxDist(Pt(3, 3)); math.Abs(got-math.Sqrt(2)) > Eps {
		t.Errorf("MaxDist center = %v", got)
	}
}

func TestBisector(t *testing.T) {
	keep, drop := Pt(0, 0), Pt(4, 0)
	h := Bisector(keep, drop)
	if !h.Contains(keep) {
		t.Error("bisector must contain keep")
	}
	if h.Contains(drop) {
		t.Error("bisector must exclude drop")
	}
	// Midpoint is on the boundary.
	if got := h.Eval(Pt(2, 0)); math.Abs(got) > Eps {
		t.Errorf("midpoint Eval = %v", got)
	}
	if !Bisector(Pt(1, 1), Pt(1, 1)).Degenerate() {
		t.Error("coincident points must yield degenerate half-plane")
	}
}

// Property: for random keep/drop/test points, Bisector membership matches
// the distance comparison.
func TestBisectorQuick(t *testing.T) {
	f := func(kx, ky, dx, dy, px, py float64) bool {
		keep, drop, p := Pt(frac(kx), frac(ky)), Pt(frac(dx), frac(dy)), Pt(frac(px), frac(py))
		if keep.Eq(drop) {
			return true
		}
		h := Bisector(keep, drop)
		dk, dd := p.Dist2(keep), p.Dist2(drop)
		if math.Abs(dk-dd) < 1e-6 {
			return true // too close to the boundary to judge
		}
		return h.ContainsStrict(p) == (dk < dd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// frac maps an arbitrary float into [0,1) deterministically.
func frac(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	_, f := math.Modf(math.Abs(x))
	return f
}

func TestPolygonBasics(t *testing.T) {
	sq := R(0, 0, 2, 2).Polygon()
	if got := sq.Area(); got != 4 {
		t.Errorf("Area = %v", got)
	}
	if got := sq.Perimeter(); got != 8 {
		t.Errorf("Perimeter = %v", got)
	}
	if got := sq.Centroid(); !got.Eq(Pt(1, 1)) {
		t.Errorf("Centroid = %v", got)
	}
	if !sq.Contains(Pt(1, 1)) || !sq.Contains(Pt(0, 0)) || sq.Contains(Pt(3, 1)) {
		t.Error("Contains wrong")
	}
	if !sq.ContainsStrict(Pt(1, 1)) || sq.ContainsStrict(Pt(0, 1)) {
		t.Error("ContainsStrict wrong")
	}
	if got := sq.Bounds(); got != R(0, 0, 2, 2) {
		t.Errorf("Bounds = %v", got)
	}
	if got := sq.DistToBoundary(Pt(1, 1)); math.Abs(got-1) > Eps {
		t.Errorf("DistToBoundary = %v", got)
	}
	if (Polygon{}).Area() != 0 || !(Polygon{}).IsEmpty() {
		t.Error("empty polygon")
	}
}

func TestPolygonClipHalfPlane(t *testing.T) {
	sq := R(0, 0, 2, 2).Polygon()
	// Keep x ≤ 1.
	half := sq.ClipHalfPlane(HalfPlane{A: 1, B: 0, C: 1})
	if got := half.Area(); math.Abs(got-2) > Eps {
		t.Errorf("half area = %v", got)
	}
	// Clip away everything.
	gone := sq.ClipHalfPlane(HalfPlane{A: 1, B: 0, C: -1})
	if !gone.IsEmpty() {
		t.Errorf("expected empty, got %v", gone)
	}
	// Clip that leaves polygon unchanged.
	same := sq.ClipHalfPlane(HalfPlane{A: 1, B: 0, C: 10})
	if math.Abs(same.Area()-4) > Eps {
		t.Errorf("unchanged clip area = %v", same.Area())
	}
	// Diagonal clip: keep x+y ≤ 2 → triangle of area 2.
	tri := sq.ClipHalfPlane(HalfPlane{A: 1, B: 1, C: 2})
	if got := tri.Area(); math.Abs(got-2) > Eps {
		t.Errorf("triangle area = %v", got)
	}
	// Degenerate half-plane is a no-op.
	if got := sq.ClipHalfPlane(HalfPlane{}); got.Area() != 4 {
		t.Error("degenerate clip must be a no-op")
	}
}

func TestPolygonClipRect(t *testing.T) {
	sq := R(0, 0, 4, 4).Polygon()
	got := sq.ClipRect(R(1, 1, 3, 5))
	if math.Abs(got.Area()-6) > Eps {
		t.Errorf("ClipRect area = %v", got.Area())
	}
}

// Property: clipping by a random half-plane never increases area, and the
// clipped polygon is contained in the original.
func TestPolygonClipMonotoneQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sq := R(0, 0, 1, 1).Polygon()
	for i := 0; i < 500; i++ {
		pg := sq
		for j := 0; j < 5; j++ {
			keep := Pt(rng.Float64(), rng.Float64())
			drop := Pt(rng.Float64(), rng.Float64())
			next := pg.ClipHalfPlane(Bisector(keep, drop))
			if next.Area() > pg.Area()+Eps {
				t.Fatalf("clip increased area: %v -> %v", pg.Area(), next.Area())
			}
			c := next.Centroid()
			if !next.IsEmpty() && !pg.Contains(c) {
				t.Fatalf("clipped centroid %v escaped original polygon", c)
			}
			pg = next
		}
	}
}

// Property: intersection of bisector half-planes contains exactly the
// points closer to keep than to every drop (sampled).
func TestHalfPlaneIntersectionSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		keep := Pt(rng.Float64(), rng.Float64())
		drops := make([]Point, 4)
		pg := R(0, 0, 1, 1).Polygon()
		for i := range drops {
			drops[i] = Pt(rng.Float64(), rng.Float64())
			pg = pg.ClipHalfPlane(Bisector(keep, drops[i]))
		}
		for s := 0; s < 50; s++ {
			p := Pt(rng.Float64(), rng.Float64())
			closer := true
			margin := math.Inf(1)
			for _, d := range drops {
				diff := p.Dist2(d) - p.Dist2(keep)
				if diff < margin {
					margin = diff
				}
				if diff < 0 {
					closer = false
				}
			}
			if math.Abs(margin) < 1e-6 {
				continue // boundary case
			}
			if got := pg.Contains(p); got != closer {
				t.Fatalf("Contains(%v) = %v, want %v (keep %v)", p, got, closer, keep)
			}
		}
	}
}

func TestRectRegionAreaAndContains(t *testing.T) {
	rr := NewRectRegion(R(0, 0, 10, 10))
	if got := rr.Area(); got != 100 {
		t.Errorf("base area = %v", got)
	}
	if !rr.Subtract(R(8, 8, 12, 12)) {
		t.Error("overlapping subtract must report true")
	}
	if rr.Subtract(R(20, 20, 30, 30)) {
		t.Error("disjoint subtract must report false")
	}
	if got := rr.Area(); math.Abs(got-96) > Eps {
		t.Errorf("area after corner hole = %v", got)
	}
	rr.Subtract(R(-1, 4, 1, 6)) // edge hole: clipped to [0,1]x[4,6], area 2
	if got := rr.Area(); math.Abs(got-94) > Eps {
		t.Errorf("area after edge hole = %v", got)
	}
	// Overlapping holes must not be double-counted.
	rr2 := NewRectRegion(R(0, 0, 10, 10))
	rr2.Subtract(R(0, 0, 5, 5))
	rr2.Subtract(R(2, 2, 6, 6))
	want := 100.0 - (25 + 16 - 9)
	if got := rr2.Area(); math.Abs(got-want) > Eps {
		t.Errorf("overlapping holes area = %v, want %v", got, want)
	}
	if rr.Contains(Pt(9, 9)) {
		t.Error("point in hole must be outside region")
	}
	if !rr.Contains(Pt(5, 5)) {
		t.Error("interior point must be inside region")
	}
	if rr.Contains(Pt(11, 5)) {
		t.Error("point outside base must be outside region")
	}
	// Hole boundary remains valid (exclusive holes).
	if !rr.Contains(Pt(8, 5)) {
		t.Error("hole boundary should still be in the region")
	}
}

func TestConservativeRect(t *testing.T) {
	rr := NewRectRegion(R(0, 0, 10, 10))
	focus := Pt(2, 2)
	// No holes: conservative = base.
	if got := rr.ConservativeRect(focus); got != R(0, 0, 10, 10) {
		t.Errorf("no-hole conservative = %v", got)
	}
	// A corner hole far from the focus cuts one side.
	rr.Subtract(R(8, 8, 10, 10))
	got := rr.ConservativeRect(focus)
	if got.IsEmpty() || !got.Contains(focus) {
		t.Fatalf("conservative rect %v must contain focus", got)
	}
	// It must avoid the hole interior.
	if got.Intersect(R(8, 8, 10, 10)).Area() > Eps {
		t.Errorf("conservative rect %v overlaps hole", got)
	}
	// Expect the larger cut to be kept (area 80).
	if math.Abs(got.Area()-80) > Eps {
		t.Errorf("conservative area = %v, want 80", got.Area())
	}
	// Focus outside region → empty.
	if got := rr.ConservativeRect(Pt(9, 9)); !got.IsEmpty() {
		t.Errorf("focus in hole should give empty, got %v", got)
	}
}

// Property: the conservative rectangle is always inside the exact region.
func TestConservativeRectInsideRegionQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		rr := NewRectRegion(R(0, 0, 1, 1))
		focus := Pt(rng.Float64(), rng.Float64())
		for i := 0; i < 4; i++ {
			c := Pt(rng.Float64()*1.2-0.1, rng.Float64()*1.2-0.1)
			h := RectCenteredAt(c, 0.2+rng.Float64()*0.3, 0.2+rng.Float64()*0.3)
			if h.Contains(focus) {
				continue // window-query holes never contain the focus
			}
			rr.Subtract(h)
		}
		cons := rr.ConservativeRect(focus)
		if cons.IsEmpty() {
			continue
		}
		// Sample points of cons; all must be in the region.
		for s := 0; s < 30; s++ {
			p := Pt(cons.MinX+rng.Float64()*cons.Width(), cons.MinY+rng.Float64()*cons.Height())
			// Skip points within Eps of a hole boundary.
			if !rr.Contains(p) {
				onBoundary := false
				for _, hl := range rr.Holes {
					if math.Abs(hl.MinX-p.X) < 1e-9 || math.Abs(hl.MaxX-p.X) < 1e-9 ||
						math.Abs(hl.MinY-p.Y) < 1e-9 || math.Abs(hl.MaxY-p.Y) < 1e-9 {
						onBoundary = true
					}
				}
				if !onBoundary {
					t.Fatalf("trial %d: point %v of conservative rect %v outside region", trial, p, cons)
				}
			}
		}
	}
}

func TestDistPointSegment(t *testing.T) {
	if got := distPointSegment(Pt(0, 1), Pt(-1, 0), Pt(1, 0)); math.Abs(got-1) > Eps {
		t.Errorf("perpendicular = %v", got)
	}
	if got := distPointSegment(Pt(3, 0), Pt(-1, 0), Pt(1, 0)); math.Abs(got-2) > Eps {
		t.Errorf("beyond end = %v", got)
	}
	if got := distPointSegment(Pt(1, 1), Pt(2, 2), Pt(2, 2)); math.Abs(got-math.Sqrt2) > Eps {
		t.Errorf("degenerate segment = %v", got)
	}
}

func TestIntersectConvex(t *testing.T) {
	a := R(0, 0, 2, 2).Polygon()
	b := R(1, 1, 3, 3).Polygon()
	got := a.IntersectConvex(b)
	if math.Abs(got.Area()-1) > Eps {
		t.Fatalf("overlap area = %v, want 1", got.Area())
	}
	// Contained polygon: intersection is the smaller one.
	c := R(0.5, 0.5, 1.5, 1.5).Polygon()
	if got := a.IntersectConvex(c); math.Abs(got.Area()-1) > Eps {
		t.Fatalf("contained area = %v", got.Area())
	}
	// Disjoint: empty.
	d := R(5, 5, 6, 6).Polygon()
	if got := a.IntersectConvex(d); !got.IsEmpty() {
		t.Fatalf("disjoint intersection = %v", got)
	}
	// Degenerate input.
	if got := a.IntersectConvex(Polygon{}); !got.IsEmpty() {
		t.Fatal("empty other must give empty")
	}
	// Triangle vs square.
	tri := Polygon{Pt(0, 0), Pt(4, 0), Pt(0, 4)}
	sq := R(0, 0, 2, 2).Polygon()
	got = tri.IntersectConvex(sq)
	// Intersection: square corner cut by x+y=4 — here the full square
	// fits under the hypotenuse, area 4... x+y ≤ 4 cuts at (2,2): the
	// square's far corner (2,2) satisfies x+y=4 exactly → area 4.
	if math.Abs(got.Area()-4) > 1e-9 {
		t.Fatalf("triangle∩square area = %v", got.Area())
	}
}

func TestIntersectConvexCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		mk := func() Polygon {
			c := Pt(rng.Float64(), rng.Float64())
			pg := RectCenteredAt(c, 0.2+rng.Float64()*0.5, 0.2+rng.Float64()*0.5).Polygon()
			// Random convex refinement by a few bisector clips.
			for i := 0; i < 3; i++ {
				keep := Pt(rng.Float64(), rng.Float64())
				drop := Pt(rng.Float64(), rng.Float64())
				pg = pg.ClipHalfPlane(Bisector(keep, drop))
			}
			return pg
		}
		a, b := mk(), mk()
		ab := a.IntersectConvex(b)
		ba := b.IntersectConvex(a)
		if math.Abs(ab.Area()-ba.Area()) > 1e-9 {
			t.Fatalf("trial %d: A∩B area %v != B∩A area %v", trial, ab.Area(), ba.Area())
		}
		// The intersection is inside both (sampled).
		if !ab.IsEmpty() {
			cen := ab.Centroid()
			if !a.Contains(cen) || !b.Contains(cen) {
				t.Fatalf("trial %d: centroid escapes an operand", trial)
			}
			if ab.Area() > a.Area()+Eps || ab.Area() > b.Area()+Eps {
				t.Fatalf("trial %d: intersection bigger than an operand", trial)
			}
		}
	}
}
