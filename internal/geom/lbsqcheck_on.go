//go:build lbsqcheck

package geom

// Checking enables the expensive invariant assertions guarded by
// `if geom.Checking { ... }` throughout the query algorithms. Build
// with -tags lbsqcheck (the CI race gate does) to turn them on; in
// regular builds the constant is false and the guarded blocks are
// eliminated as dead code.
const Checking = true
