package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle (a 2-D minimum bounding rectangle).
// A Rect with MinX > MaxX or MinY > MaxY is empty.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// R is shorthand for Rect{minX, minY, maxX, maxY}.
func R(minX, minY, maxX, maxY float64) Rect { return Rect{minX, minY, maxX, maxY} }

// RectFromPoints returns the MBR of the given points. It panics on an
// empty slice.
func RectFromPoints(pts ...Point) Rect {
	if len(pts) == 0 {
		panic("geom: RectFromPoints with no points")
	}
	r := Rect{pts[0].X, pts[0].Y, pts[0].X, pts[0].Y}
	for _, p := range pts[1:] {
		r = r.ExpandPoint(p)
	}
	return r
}

// RectCenteredAt returns the rectangle with center c and side lengths
// w (along x) and h (along y).
func RectCenteredAt(c Point, w, h float64) Rect {
	return Rect{c.X - w/2, c.Y - h/2, c.X + w/2, c.Y + h/2}
}

// EmptyRect returns a canonical empty rectangle that expands correctly.
func EmptyRect() Rect {
	return Rect{math.Inf(1), math.Inf(1), math.Inf(-1), math.Inf(-1)}
}

// IsEmpty reports whether r contains no points.
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Width returns the extent of r along the x-axis (0 if empty).
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxX - r.MinX
}

// Height returns the extent of r along the y-axis (0 if empty).
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxY - r.MinY
}

// Area returns the area of r (0 if empty).
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Margin returns half the perimeter of r, the R*-tree margin metric.
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// Center returns the centroid of r.
func (r Rect) Center() Point { return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsStrict reports whether p lies strictly inside r by more than Eps.
func (r Rect) ContainsStrict(p Point) bool {
	return p.X > r.MinX+Eps && p.X < r.MaxX-Eps && p.Y > r.MinY+Eps && p.Y < r.MaxY-Eps
}

// ContainsRect reports whether r fully contains s.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least a boundary point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		math.Max(r.MinX, s.MinX), math.Max(r.MinY, s.MinY),
		math.Min(r.MaxX, s.MaxX), math.Min(r.MaxY, s.MaxY),
	}
	return out
}

// Union returns the MBR of r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		math.Min(r.MinX, s.MinX), math.Min(r.MinY, s.MinY),
		math.Max(r.MaxX, s.MaxX), math.Max(r.MaxY, s.MaxY),
	}
}

// ExpandPoint returns the MBR of r and p.
func (r Rect) ExpandPoint(p Point) Rect {
	if r.IsEmpty() {
		return Rect{p.X, p.Y, p.X, p.Y}
	}
	return Rect{
		math.Min(r.MinX, p.X), math.Min(r.MinY, p.Y),
		math.Max(r.MaxX, p.X), math.Max(r.MaxY, p.Y),
	}
}

// Inflate returns r grown by dx on each side along x and dy along y.
// Negative values shrink; the result may become empty.
func (r Rect) Inflate(dx, dy float64) Rect {
	return Rect{r.MinX - dx, r.MinY - dy, r.MaxX + dx, r.MaxY + dy}
}

// MinDist returns the minimum Euclidean distance from p to r
// (0 if p is inside). This is the mindist metric of [RKV95].
func (r Rect) MinDist(p Point) float64 {
	return math.Sqrt(r.MinDist2(p))
}

// MinDist2 returns the squared minimum distance from p to r.
func (r Rect) MinDist2(p Point) float64 {
	dx := math.Max(0, math.Max(r.MinX-p.X, p.X-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-p.Y, p.Y-r.MaxY))
	return dx*dx + dy*dy
}

// MaxDist returns the maximum Euclidean distance from p to any point of r.
func (r Rect) MaxDist(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.MinX), math.Abs(p.X-r.MaxX))
	dy := math.Max(math.Abs(p.Y-r.MinY), math.Abs(p.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

// Corners returns the four corner points of r in counter-clockwise order
// starting at (MinX, MinY).
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.MinX, r.MinY}, {r.MaxX, r.MinY}, {r.MaxX, r.MaxY}, {r.MinX, r.MaxY},
	}
}

// Polygon returns r as a counter-clockwise convex polygon.
func (r Rect) Polygon() Polygon {
	c := r.Corners()
	return Polygon{c[0], c[1], c[2], c[3]}
}

// Overlap returns the overlap area between r and s.
func (r Rect) Overlap(s Rect) float64 {
	i := r.Intersect(s)
	if i.IsEmpty() {
		return 0
	}
	return i.Area()
}

// Enlargement returns the increase in area of r needed to include s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.6g,%.6g]x[%.6g,%.6g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}
