package geom

import "sort"

// RectRegion is a rectilinear region of the form
//
//	base − (f₁ ∪ f₂ ∪ … ∪ fₙ)
//
// used for the exact validity region of a location-based window query
// (paper Sec. 4): base is the inner validity rectangle (intersection of
// the per-result-point rectangles) and each fᵢ is the Minkowski rectangle
// of a candidate outer point, inside which that point would enter the
// window.
type RectRegion struct {
	Base Rect
	// Holes are the subtracted rectangles, stored already clipped to Base.
	// Entries with empty intersection are dropped on Subtract.
	Holes []Rect
}

// NewRectRegion returns the region consisting of base with no holes.
func NewRectRegion(base Rect) *RectRegion {
	return &RectRegion{Base: base}
}

// Subtract removes rectangle f from the region. It returns true if f
// actually overlaps the base rectangle (i.e. f influences the region).
func (rr *RectRegion) Subtract(f Rect) bool {
	clipped := f.Intersect(rr.Base)
	if clipped.IsEmpty() || clipped.Area() <= Eps*Eps {
		return false
	}
	rr.Holes = append(rr.Holes, clipped)
	return true
}

// Contains reports whether p belongs to the region. The base boundary is
// inclusive and hole boundaries are exclusive (a point on a hole edge is
// still valid: the outer object only enters the window strictly inside).
func (rr *RectRegion) Contains(p Point) bool {
	if !rr.Base.Contains(p) {
		return false
	}
	for _, h := range rr.Holes {
		if h.ContainsStrict(p) {
			return false
		}
	}
	return true
}

// Area returns the exact area of the region, computed by coordinate
// compression over the hole boundaries (exact for the small hole counts
// that arise in practice — the paper reports ~2 outer influence objects).
func (rr *RectRegion) Area() float64 {
	if rr.Base.IsEmpty() {
		return 0
	}
	if len(rr.Holes) == 0 {
		return rr.Base.Area()
	}
	xs := []float64{rr.Base.MinX, rr.Base.MaxX}
	ys := []float64{rr.Base.MinY, rr.Base.MaxY}
	for _, h := range rr.Holes {
		xs = append(xs, h.MinX, h.MaxX)
		ys = append(ys, h.MinY, h.MaxY)
	}
	xs = dedupSorted(xs)
	ys = dedupSorted(ys)
	area := 0.0
	for i := 0; i+1 < len(xs); i++ {
		for j := 0; j+1 < len(ys); j++ {
			cx, cy := (xs[i]+xs[i+1])/2, (ys[j]+ys[j+1])/2
			cell := Point{cx, cy}
			if !rr.Base.Contains(cell) {
				continue
			}
			covered := false
			for _, h := range rr.Holes {
				if h.Contains(cell) {
					covered = true
					break
				}
			}
			if !covered {
				area += (xs[i+1] - xs[i]) * (ys[j+1] - ys[j])
			}
		}
	}
	return area
}

// ConservativeRect returns an axis-aligned rectangle contained in the
// region and containing focus, following the paper's conservative
// validity region (Fig. 19): each hole is eliminated by cutting the
// current rectangle along one hole edge, choosing the cut that keeps the
// focus and preserves the largest area. If focus is not in the region the
// empty rectangle is returned.
func (rr *RectRegion) ConservativeRect(focus Point) Rect {
	if !rr.Contains(focus) {
		return EmptyRect()
	}
	cur := rr.Base
	// Process larger intrusions first: cutting away big holes early tends
	// to make later holes fall outside the running rectangle entirely.
	holes := append([]Rect(nil), rr.Holes...)
	sort.Slice(holes, func(i, j int) bool { return holes[i].Area() > holes[j].Area() })
	for _, h := range holes {
		ov := h.Intersect(cur)
		if ov.IsEmpty() || ov.Area() <= Eps*Eps {
			continue
		}
		best := EmptyRect()
		// Four candidate cuts; keep only those still containing the focus.
		cands := []Rect{
			{cur.MinX, cur.MinY, ov.MinX, cur.MaxY}, // keep left of hole
			{ov.MaxX, cur.MinY, cur.MaxX, cur.MaxY}, // keep right of hole
			{cur.MinX, cur.MinY, cur.MaxX, ov.MinY}, // keep below hole
			{cur.MinX, ov.MaxY, cur.MaxX, cur.MaxY}, // keep above hole
		}
		for _, c := range cands {
			if c.IsEmpty() || !c.Contains(focus) {
				continue
			}
			if best.IsEmpty() || c.Area() > best.Area() {
				best = c
			}
		}
		if best.IsEmpty() {
			// The focus sits on the hole boundary; the conservative
			// region collapses to the focus itself.
			return Rect{focus.X, focus.Y, focus.X, focus.Y}
		}
		cur = best
	}
	return cur
}

// dedupSorted sorts xs and removes values closer than Eps.
func dedupSorted(xs []float64) []float64 {
	sort.Float64s(xs)
	out := xs[:0]
	for _, x := range xs {
		if len(out) == 0 || x-out[len(out)-1] > Eps {
			out = append(out, x)
		}
	}
	return out
}
