//go:build lbsqcheck

package geom

import "testing"

// TestCheckingEnabled pins the build-tag wiring: under -tags lbsqcheck
// the assertion guards must be live (the CI race gate builds every
// package this way, so all tests run with invariants asserted).
func TestCheckingEnabled(t *testing.T) {
	if !Checking {
		t.Fatal("Checking must be true under -tags lbsqcheck")
	}
}
