//go:build !lbsqcheck

package geom

// Checking is false in regular builds; see lbsqcheck_on.go.
const Checking = false
