package geom

import "sort"

// ConvexHull returns the convex hull of the points in counter-clockwise
// order (Andrew's monotone chain). Collinear points on the hull boundary
// are dropped; fewer than three distinct points yield the distinct
// points themselves (possibly a segment or single point).
func ConvexHull(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	ps := append([]Point(nil), pts...)
	sort.Slice(ps, func(i, j int) bool {
		// Exact comparison: a tolerant comparator would not be a strict
		// weak order and corrupts the sort.
		if !ExactEq(ps[i].X, ps[j].X) {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
	// Dedupe.
	uniq := ps[:1]
	for _, p := range ps[1:] {
		if !SamePoint(p, uniq[len(uniq)-1]) {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	if len(ps) <= 2 {
		return ps
	}

	var lower, upper []Point
	for _, p := range ps {
		for len(lower) >= 2 && cross3(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(ps) - 1; i >= 0; i-- {
		p := ps[i]
		for len(upper) >= 2 && cross3(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	return hull
}

// cross3 returns the cross product (b−a)×(c−a): positive for a left
// turn.
func cross3(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}
