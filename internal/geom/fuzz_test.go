package geom

import (
	"math"
	"testing"
)

// FuzzPolygonClip throws arbitrary half-planes — and bisectors of
// arbitrary point pairs, the production pattern of the validity-region
// algorithms — at the Sutherland–Hodgman clipper. Clipping a convex
// polygon must preserve convexity, never grow the area, and keep every
// surviving vertex on the accepted side of the cut (within tolerance).
func FuzzPolygonClip(f *testing.F) {
	f.Add(0.3, -0.7, 0.1, 0.2, 0.8, 0.9, 0.1)
	f.Add(1.0, 0.0, 0.5, 0.25, 0.25, 0.75, 0.75)
	f.Add(0.0, 0.0, 0.0, 0.5, 0.5, 0.5, 0.5)
	f.Add(-1.0, -1.0, -3.0, 0.0, 0.0, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, a, b, c, px, py, qx, qy float64) {
		for _, v := range []float64{a, b, c, px, py, qx, qy} {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				t.Skip("geometry assumes finite, bounded coordinates")
			}
		}
		base := R(0, 0, 1, 1).Polygon()
		h := HalfPlane{A: a, B: b, C: c}
		out := base.ClipHalfPlane(h)
		checkClip(t, base, out, h)
		// Chain a bisector cut on the result, as the influence-set loop
		// does.
		hb := Bisector(Pt(px, py), Pt(qx, qy))
		out2 := out.ClipHalfPlane(hb)
		checkClip(t, out, out2, hb)
	})
}

func checkClip(t *testing.T, in, out Polygon, h HalfPlane) {
	t.Helper()
	if !out.IsConvex() {
		t.Fatalf("clip result not convex: %v", out)
	}
	if out.Area() > in.Area()*(1+Eps)+Eps {
		t.Fatalf("clip grew the area: %g -> %g", in.Area(), out.Area())
	}
	if h.Degenerate() {
		return
	}
	tol := 1e-6 * (1 + math.Abs(h.A) + math.Abs(h.B) + math.Abs(h.C))
	for _, v := range out {
		if h.Eval(v) > tol {
			t.Fatalf("vertex %v on the rejected side of the cut (eval %g)", v, h.Eval(v))
		}
	}
}
