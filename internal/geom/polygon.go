package geom

import "math"

// Polygon is a convex polygon with vertices in counter-clockwise order.
// An empty slice denotes the empty region. The validity regions of
// location-based nearest-neighbor queries are represented as Polygons
// (intersections of half-planes are always convex).
type Polygon []Point

// Clone returns a copy of the polygon.
func (pg Polygon) Clone() Polygon {
	out := make(Polygon, len(pg))
	copy(out, pg)
	return out
}

// IsEmpty reports whether the polygon has no interior (fewer than three
// vertices or near-zero area).
func (pg Polygon) IsEmpty() bool {
	return len(pg) < 3 || pg.Area() <= Eps
}

// Area returns the polygon area via the shoelace formula.
func (pg Polygon) Area() float64 {
	if len(pg) < 3 {
		return 0
	}
	sum := 0.0
	for i := 0; i < len(pg); i++ {
		j := (i + 1) % len(pg)
		sum += pg[i].Cross(pg[j])
	}
	return math.Abs(sum) / 2
}

// Perimeter returns the total edge length.
func (pg Polygon) Perimeter() float64 {
	if len(pg) < 2 {
		return 0
	}
	sum := 0.0
	for i := 0; i < len(pg); i++ {
		sum += pg[i].Dist(pg[(i+1)%len(pg)])
	}
	return sum
}

// Centroid returns the area centroid; for degenerate polygons it returns
// the vertex average.
func (pg Polygon) Centroid() Point {
	if len(pg) == 0 {
		return Point{}
	}
	a := 0.0
	var cx, cy float64
	for i := 0; i < len(pg); i++ {
		j := (i + 1) % len(pg)
		cr := pg[i].Cross(pg[j])
		a += cr
		cx += (pg[i].X + pg[j].X) * cr
		cy += (pg[i].Y + pg[j].Y) * cr
	}
	if math.Abs(a) < Eps {
		var s Point
		for _, p := range pg {
			s = s.Add(p)
		}
		return s.Scale(1 / float64(len(pg)))
	}
	return Point{cx / (3 * a), cy / (3 * a)}
}

// Contains reports whether p lies inside the convex polygon (boundary
// inclusive). Vertices must be in CCW order.
func (pg Polygon) Contains(p Point) bool {
	if len(pg) < 3 {
		return false
	}
	for i := 0; i < len(pg); i++ {
		a, b := pg[i], pg[(i+1)%len(pg)]
		edge := b.Sub(a)
		// Tolerance scales with edge length so long skinny regions behave.
		if edge.Cross(p.Sub(a)) < -Eps*(1+edge.Norm()) {
			return false
		}
	}
	return true
}

// ContainsStrict reports whether p lies strictly inside the polygon.
func (pg Polygon) ContainsStrict(p Point) bool {
	if len(pg) < 3 {
		return false
	}
	for i := 0; i < len(pg); i++ {
		a, b := pg[i], pg[(i+1)%len(pg)]
		edge := b.Sub(a)
		if edge.Cross(p.Sub(a)) <= Eps*(1+edge.Norm()) {
			return false
		}
	}
	return true
}

// Bounds returns the MBR of the polygon.
func (pg Polygon) Bounds() Rect {
	if len(pg) == 0 {
		return EmptyRect()
	}
	return RectFromPoints(pg...)
}

// ClipHalfPlane returns the intersection of the polygon with half-plane h
// using Sutherland–Hodgman clipping. The result is again convex and CCW.
// Degenerate (zero-normal) half-planes leave the polygon unchanged.
func (pg Polygon) ClipHalfPlane(h HalfPlane) Polygon {
	if h.Degenerate() || len(pg) == 0 {
		return pg
	}
	scale := Eps * (1 + abs(h.A) + abs(h.B))
	out := make(Polygon, 0, len(pg)+1)
	for i := 0; i < len(pg); i++ {
		cur, next := pg[i], pg[(i+1)%len(pg)]
		ec, en := h.Eval(cur), h.Eval(next)
		curIn, nextIn := ec <= scale, en <= scale
		if curIn {
			out = append(out, cur)
		}
		if curIn != nextIn {
			// Edge crosses the boundary; add the intersection point.
			t := ec / (ec - en)
			if t < 0 {
				t = 0
			} else if t > 1 {
				t = 1
			}
			x := cur.Lerp(next, t)
			// Avoid duplicating a vertex that sits exactly on the line.
			if len(out) == 0 || !out[len(out)-1].Eq(x) {
				out = append(out, x)
			}
		}
	}
	// Remove a duplicated closing vertex, if any.
	if len(out) > 1 && out[0].Eq(out[len(out)-1]) {
		out = out[:len(out)-1]
	}
	if len(out) < 3 {
		return Polygon{}
	}
	if Checking && !out.IsConvex() {
		panic("geom: ClipHalfPlane produced a non-convex polygon")
	}
	return out
}

// IsConvex reports whether the polygon is convex with counter-clockwise
// orientation, within the epsilon tolerance (collinear vertex triples
// are accepted). Polygons with fewer than three vertices are trivially
// convex. This is the invariant every clipping result must preserve;
// lbsqcheck builds assert it after each construction.
func (pg Polygon) IsConvex() bool {
	n := len(pg)
	if n < 3 {
		return true
	}
	for i := 0; i < n; i++ {
		a, b, c := pg[i], pg[(i+1)%n], pg[(i+2)%n]
		ab, bc := b.Sub(a), c.Sub(b)
		cross := ab.X*bc.Y - ab.Y*bc.X
		tol := Eps * (1 + math.Sqrt(ab.Dot(ab)*bc.Dot(bc)))
		if cross < -tol {
			return false
		}
	}
	return true
}

// ClipRect returns the intersection of the polygon with rectangle r.
func (pg Polygon) ClipRect(r Rect) Polygon {
	out := pg
	out = out.ClipHalfPlane(HalfPlane{A: -1, B: 0, C: -r.MinX}) // x ≥ MinX
	out = out.ClipHalfPlane(HalfPlane{A: 1, B: 0, C: r.MaxX})   // x ≤ MaxX
	out = out.ClipHalfPlane(HalfPlane{A: 0, B: -1, C: -r.MinY}) // y ≥ MinY
	out = out.ClipHalfPlane(HalfPlane{A: 0, B: 1, C: r.MaxY})   // y ≤ MaxY
	return out
}

// Edges returns the number of edges of the polygon.
func (pg Polygon) Edges() int {
	if len(pg) < 3 {
		return 0
	}
	return len(pg)
}

// DistToBoundary returns the minimum distance from p to the polygon
// boundary. For p inside the region this is the "safe distance" a client
// can travel in any direction before its cached result may expire.
func (pg Polygon) DistToBoundary(p Point) float64 {
	if len(pg) == 0 {
		return 0
	}
	min := math.Inf(1)
	for i := 0; i < len(pg); i++ {
		d := distPointSegment(p, pg[i], pg[(i+1)%len(pg)])
		if d < min {
			min = d
		}
	}
	return min
}

// distPointSegment returns the distance from p to segment ab.
func distPointSegment(p, a, b Point) float64 {
	ab := b.Sub(a)
	n2 := ab.Norm2()
	if ExactZero(n2) {
		return p.Dist(a)
	}
	t := p.Sub(a).Dot(ab) / n2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist(a.Add(ab.Scale(t)))
}

// IntersectConvex returns the intersection of two convex polygons (both
// CCW), itself convex: pg clipped by each edge half-plane of other.
// Clients use this to combine cached validity regions — a position
// inside the intersection keeps the results of both cached queries.
func (pg Polygon) IntersectConvex(other Polygon) Polygon {
	if len(pg) < 3 || len(other) < 3 {
		return Polygon{}
	}
	out := pg
	for i := 0; i < len(other); i++ {
		a, b := other[i], other[(i+1)%len(other)]
		// Inside of a CCW edge (a→b) is the left half-plane:
		// (b−a)×(p−a) ≥ 0 ⇔ n·p ≤ c with n = (by−ay, ax−bx).
		h := HalfPlane{
			A: b.Y - a.Y,
			B: a.X - b.X,
			C: (b.Y-a.Y)*a.X + (a.X-b.X)*a.Y,
		}
		out = out.ClipHalfPlane(h)
		if out.IsEmpty() {
			return Polygon{}
		}
	}
	return out
}
