package geom

import "math"

// This file is the approved home of floating-point comparison in the
// module. The floatcmp analyzer (internal/analysis/floatcmp) forbids
// raw == / != on float64 values everywhere else: geometric predicates
// must either tolerate floating-point noise explicitly (Eq, Zero) or
// declare — by calling an Exact* helper — that bit-exact comparison is
// intended (sort comparators, sentinel values, sign-safety checks).
// Keeping both families here makes every exact comparison greppable
// and reviewable.

// Eq reports whether a and b are equal within the absolute tolerance
// Eps. Use for comparing computed coordinates, distances, and times.
func Eq(a, b float64) bool { return math.Abs(a-b) <= Eps }

// Zero reports whether |x| ≤ Eps. Use for testing computed quantities
// (areas, cross products, normal magnitudes) against zero.
func Zero(x float64) bool { return math.Abs(x) <= Eps }

// ExactEq reports a == b with IEEE-754 semantics (so NaN != NaN and
// -0 == +0). Use only where epsilon comparison would be wrong: sort
// comparators (tolerant comparison breaks transitivity), sentinel
// values such as ±Inf, and tie detection between values computed by
// the identical expression.
func ExactEq(a, b float64) bool { return a == b }

// ExactZero reports x == 0 exactly. Use where the operand is known to
// be exact (never rounded) or where the test guards a division and any
// non-zero value — however small — is a valid divisor.
func ExactZero(x float64) bool { return x == 0 }

// SamePoint reports exact coordinate equality of two points. Use for
// deduplicating vertices produced by the identical computation; use
// Point.Eq for tolerant geometric coincidence.
func SamePoint(a, b Point) bool { return a.X == b.X && a.Y == b.Y }

// SameRect reports exact coordinate equality of two rectangles. Use
// for identity checks — universe agreement between cluster nodes,
// configuration round-trips — where the two values must be bit-equal
// copies of one another, not merely geometrically close.
func SameRect(a, b Rect) bool {
	return a.MinX == b.MinX && a.MinY == b.MinY && a.MaxX == b.MaxX && a.MaxY == b.MaxY
}
