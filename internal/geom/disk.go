package geom

import "math"

// Disk is a closed disk (circle plus interior).
type Disk struct {
	C Point
	R float64
}

// Contains reports whether p lies in the disk (boundary inclusive).
func (d Disk) Contains(p Point) bool { return p.Dist2(d.C) <= d.R*d.R+Eps }

// Bounds returns the disk's bounding rectangle.
func (d Disk) Bounds() Rect {
	return Rect{d.C.X - d.R, d.C.Y - d.R, d.C.X + d.R, d.C.Y + d.R}
}

// Project returns the closest point of the disk to p (p itself if
// inside).
func (d Disk) Project(p Point) Point {
	v := p.Sub(d.C)
	n := v.Norm()
	if n <= d.R {
		return p
	}
	return d.C.Add(v.Scale(d.R / n))
}

// DiskIntersection is the intersection of a set of closed disks — the
// validity region of a location-based range ("within radius r") query
// before outer points are subtracted. It is convex; its boundary
// consists of circular arcs. The zero value (no disks) is the whole
// plane.
type DiskIntersection struct {
	Disks []Disk
}

// Add includes another disk in the intersection.
func (di *DiskIntersection) Add(d Disk) { di.Disks = append(di.Disks, d) }

// Contains reports whether p lies in every disk.
func (di *DiskIntersection) Contains(p Point) bool {
	for _, d := range di.Disks {
		if !d.Contains(p) {
			return false
		}
	}
	return true
}

// Margin returns the smallest slack min_d (d.R − dist(p, d.C)):
// positive inside (how far p can move in any direction while staying in
// the intersection), negative outside. With no disks it is +Inf.
func (di *DiskIntersection) Margin(p Point) float64 {
	m := math.Inf(1)
	for _, d := range di.Disks {
		if s := d.R - p.Dist(d.C); s < m {
			m = s
		}
	}
	return m
}

// IsEmpty reports whether the intersection is empty, determined by
// cyclic projection (Dykstra-style alternating projections converge to
// a feasible point of an intersection of convex sets when one exists).
func (di *DiskIntersection) IsEmpty() bool {
	if len(di.Disks) == 0 {
		return false
	}
	_, ok := di.FeasiblePoint()
	return !ok
}

// FeasiblePoint returns some point in the intersection, if nonempty.
// It starts from the disk-center centroid and cyclically projects onto
// each disk; for intersections of convex sets this converges to a point
// of the intersection when one exists.
func (di *DiskIntersection) FeasiblePoint() (Point, bool) {
	if len(di.Disks) == 0 {
		return Point{}, true
	}
	var p Point
	for _, d := range di.Disks {
		p = p.Add(d.C)
	}
	p = p.Scale(1 / float64(len(di.Disks)))
	const rounds = 200
	for i := 0; i < rounds; i++ {
		moved := false
		for _, d := range di.Disks {
			q := d.Project(p)
			if !SamePoint(q, p) {
				p, moved = q, true
			}
		}
		if !moved {
			return p, true
		}
	}
	// Tolerate convergence-limit noise.
	if di.Margin(p) >= -1e-7*(1+maxRadius(di.Disks)) {
		return p, true
	}
	return Point{}, false
}

// DistanceFrom returns (approximately, via cyclic projection) the
// distance from point p to the intersection region: 0 if p is inside,
// +Inf if the intersection is empty. Used to decide whether an outer
// point's disk reaches the region.
func (di *DiskIntersection) DistanceFrom(p Point) float64 {
	if di.Contains(p) {
		return 0
	}
	if len(di.Disks) == 0 {
		return 0
	}
	// Project p cyclically until stable; the limit is the closest point
	// for two sets and a good approximation in general (error vanishes
	// as the iteration proceeds; we run a fixed generous budget).
	x := p
	const rounds = 200
	for i := 0; i < rounds; i++ {
		moved := false
		for _, d := range di.Disks {
			q := d.Project(x)
			if q.Dist2(x) > 1e-30 {
				x, moved = q, true
			}
		}
		if !moved {
			break
		}
	}
	if di.Margin(x) < -1e-6*(1+maxRadius(di.Disks)) {
		return math.Inf(1) // empty intersection
	}
	return p.Dist(x)
}

func maxRadius(ds []Disk) float64 {
	m := 0.0
	for _, d := range ds {
		if d.R > m {
			m = d.R
		}
	}
	return m
}

// AreaGrid estimates, by midpoint quadrature on an n×n grid over the
// bounding box, the area of {p ∈ di : keep(p)}. keep may be nil (no
// extra filter). The estimate is used for experiment metrics only; all
// validity decisions use exact distance tests.
func (di *DiskIntersection) AreaGrid(n int, keep func(Point) bool) float64 {
	if len(di.Disks) == 0 || n <= 0 {
		return math.Inf(1)
	}
	bb := di.Disks[0].Bounds()
	for _, d := range di.Disks[1:] {
		bb = bb.Intersect(d.Bounds())
	}
	if bb.IsEmpty() {
		return 0
	}
	dx, dy := bb.Width()/float64(n), bb.Height()/float64(n)
	cell := dx * dy
	area := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := Pt(bb.MinX+(float64(i)+0.5)*dx, bb.MinY+(float64(j)+0.5)*dy)
			if di.Contains(p) && (keep == nil || keep(p)) {
				area += cell
			}
		}
	}
	return area
}
