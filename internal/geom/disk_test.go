package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestConvexHull(t *testing.T) {
	// Square plus interior points.
	pts := []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.2, 0.8}}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull size = %d: %v", len(hull), hull)
	}
	// CCW orientation.
	area := Polygon(hull).Area()
	if math.Abs(area-1) > Eps {
		t.Fatalf("hull area = %v", area)
	}
	// Collinear points collapse.
	line := []Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	if got := ConvexHull(line); len(got) != 2 {
		t.Fatalf("collinear hull = %v", got)
	}
	// Degenerate inputs.
	if got := ConvexHull(nil); got != nil {
		t.Fatal("nil hull")
	}
	if got := ConvexHull([]Point{{1, 2}}); len(got) != 1 {
		t.Fatal("single-point hull")
	}
	if got := ConvexHull([]Point{{1, 2}, {1, 2}, {1, 2}}); len(got) != 1 {
		t.Fatal("duplicate-point hull")
	}
}

func TestConvexHullProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(100)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64(), rng.Float64())
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			continue
		}
		pg := Polygon(hull)
		// Every input point lies inside (or on) the hull.
		for _, p := range pts {
			if !pg.Contains(p) {
				t.Fatalf("trial %d: point %v outside hull", trial, p)
			}
		}
		// Hull is convex: all turns left.
		for i := range hull {
			a, b, c := hull[i], hull[(i+1)%len(hull)], hull[(i+2)%len(hull)]
			if cross3(a, b, c) < -Eps {
				t.Fatalf("trial %d: right turn at %d", trial, i)
			}
		}
	}
}

func TestDiskBasics(t *testing.T) {
	d := Disk{C: Pt(1, 1), R: 2}
	if !d.Contains(Pt(1, 1)) || !d.Contains(Pt(3, 1)) || d.Contains(Pt(3.1, 1)) {
		t.Fatal("Contains wrong")
	}
	if got := d.Bounds(); got != R(-1, -1, 3, 3) {
		t.Fatalf("Bounds = %v", got)
	}
	if got := d.Project(Pt(1, 5)); !got.Eq(Pt(1, 3)) {
		t.Fatalf("Project outside = %v", got)
	}
	if got := d.Project(Pt(1.5, 1)); got != Pt(1.5, 1) {
		t.Fatalf("Project inside = %v", got)
	}
}

func TestDiskIntersectionContains(t *testing.T) {
	var di DiskIntersection
	if !di.Contains(Pt(1e9, 1e9)) {
		t.Fatal("empty intersection set = whole plane")
	}
	di.Add(Disk{C: Pt(0, 0), R: 1})
	di.Add(Disk{C: Pt(1, 0), R: 1})
	if !di.Contains(Pt(0.5, 0)) {
		t.Fatal("lens center must be inside")
	}
	if di.Contains(Pt(-0.5, 0)) {
		t.Fatal("point in only one disk")
	}
	// Margin: at (0.5, 0) the slack is 1 − 0.5 = 0.5 for both disks.
	if got := di.Margin(Pt(0.5, 0)); math.Abs(got-0.5) > Eps {
		t.Fatalf("Margin = %v", got)
	}
	if di.Margin(Pt(2, 0)) >= 0 {
		t.Fatal("outside point must have negative margin")
	}
}

func TestDiskIntersectionFeasibility(t *testing.T) {
	var di DiskIntersection
	di.Add(Disk{C: Pt(0, 0), R: 1})
	di.Add(Disk{C: Pt(1.5, 0), R: 1})
	p, ok := di.FeasiblePoint()
	if !ok || !di.Contains(p) {
		t.Fatalf("feasible point %v ok=%v", p, ok)
	}
	if di.IsEmpty() {
		t.Fatal("lens not empty")
	}
	// Disjoint disks: empty intersection.
	var dj DiskIntersection
	dj.Add(Disk{C: Pt(0, 0), R: 1})
	dj.Add(Disk{C: Pt(5, 0), R: 1})
	if !dj.IsEmpty() {
		t.Fatal("disjoint disks must have empty intersection")
	}
	if got := dj.DistanceFrom(Pt(0, 0)); !math.IsInf(got, 1) {
		t.Fatalf("distance to empty region = %v", got)
	}
}

func TestDiskIntersectionDistanceFrom(t *testing.T) {
	var di DiskIntersection
	di.Add(Disk{C: Pt(0, 0), R: 1})
	if got := di.DistanceFrom(Pt(0.5, 0)); got != 0 {
		t.Fatalf("inside distance = %v", got)
	}
	// Distance to a single disk: exact.
	if got := di.DistanceFrom(Pt(3, 0)); math.Abs(got-2) > 1e-6 {
		t.Fatalf("single-disk distance = %v", got)
	}
	// Two-disk lens: distance from a point on the axis.
	di.Add(Disk{C: Pt(1, 0), R: 1})
	got := di.DistanceFrom(Pt(-2, 0))
	// Closest point of the lens to (−2, 0) is (0, 0): distance 2. The
	// cyclic projection returns an upper bound.
	if got < 2-1e-9 || got > 2.2 {
		t.Fatalf("lens distance = %v, want ≈ 2 (upper bound)", got)
	}
}

func TestAreaGrid(t *testing.T) {
	var di DiskIntersection
	di.Add(Disk{C: Pt(0, 0), R: 1})
	got := di.AreaGrid(400, nil)
	if math.Abs(got-math.Pi)/math.Pi > 0.02 {
		t.Fatalf("disk area = %v, want π", got)
	}
	// Filter: keep only the right half.
	half := di.AreaGrid(400, func(p Point) bool { return p.X >= 0 })
	if math.Abs(half-math.Pi/2)/(math.Pi/2) > 0.02 {
		t.Fatalf("half-disk area = %v", half)
	}
	// Lens area of two unit disks at distance 1:
	// 2·acos(1/2) − (1/2)·√3 ≈ 1.228.
	di.Add(Disk{C: Pt(1, 0), R: 1})
	lens := di.AreaGrid(400, nil)
	want := 2*math.Acos(0.5) - 0.5*math.Sqrt(3)
	if math.Abs(lens-want)/want > 0.03 {
		t.Fatalf("lens area = %v, want %v", lens, want)
	}
	if got := di.AreaGrid(0, nil); !math.IsInf(got, 1) {
		t.Fatal("n=0 must be Inf")
	}
}
