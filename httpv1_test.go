package lbsq

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// fetch GETs path and returns status, content type and body.
func fetch(t *testing.T, base, path string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body
}

// TestV1AliasesLegacyPayloads locks the v1 contract: every success
// payload is byte-identical between the legacy path and its /v1 twin.
func TestV1AliasesLegacyPayloads(t *testing.T) {
	items, uni := UniformDataset(3000, 11)
	db, err := Open(items, uni, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()

	paths := []string{
		"/nn?x=0.4&y=0.6&k=3",
		"/window?x=0.5&y=0.5&qx=0.05&qy=0.05",
		"/range?x=0.3&y=0.7&r=0.04",
		"/route?x1=0.1&y1=0.5&x2=0.2&y2=0.5",
		"/info",
	}
	for _, p := range paths {
		legacyCode, legacyCT, legacy := fetch(t, srv.URL, p)
		v1Code, v1CT, v1 := fetch(t, srv.URL, "/v1"+p)
		if legacyCode != http.StatusOK || v1Code != http.StatusOK {
			t.Fatalf("%s: status legacy=%d v1=%d", p, legacyCode, v1Code)
		}
		if legacyCT != v1CT {
			t.Errorf("%s: content type legacy=%q v1=%q", p, legacyCT, v1CT)
		}
		if !bytes.Equal(legacy, v1) {
			t.Errorf("%s: payload differs between legacy and /v1 (%d vs %d bytes)",
				p, len(legacy), len(v1))
		}
	}
}

// TestV1ErrorEnvelope locks the error contract: /v1 errors are the
// uniform JSON envelope {"error": ..., "code": ...} on every endpoint,
// while legacy paths keep plain text.
func TestV1ErrorEnvelope(t *testing.T) {
	items, uni := UniformDataset(500, 12)
	db, err := Open(items, uni, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()

	cases := []struct {
		path string
		code int
	}{
		{"/nn?x=0.5&y=0.5&k=0", http.StatusBadRequest}, // bad k
		{"/nn?x=bogus&y=0.5", http.StatusBadRequest},   // bad coordinate
		{"/window?x=0.5&y=0.5&qx=-1&qy=0.1", http.StatusBadRequest},
		{"/range?x=0.5&y=0.5&r=0", http.StatusBadRequest},
		{"/nn?x=0.5&y=0.5&k=100000", http.StatusUnprocessableEntity}, // k > n
	}
	for _, tc := range cases {
		code, ct, body := fetch(t, srv.URL, "/v1"+tc.path)
		if code != tc.code {
			t.Errorf("/v1%s: status %d, want %d", tc.path, code, tc.code)
		}
		if !strings.HasPrefix(ct, "application/json") {
			t.Errorf("/v1%s: content type %q, want JSON envelope", tc.path, ct)
		}
		var env struct {
			Error string `json:"error"`
			Code  int    `json:"code"`
		}
		if err := json.Unmarshal(body, &env); err != nil || env.Error == "" || env.Code != tc.code {
			t.Errorf("/v1%s: body %q is not the error envelope (err=%v)", tc.path, body, err)
		}

		legacyCode, legacyCT, _ := fetch(t, srv.URL, tc.path)
		if legacyCode != tc.code {
			t.Errorf("%s: legacy status %d, want %d", tc.path, legacyCode, tc.code)
		}
		if strings.HasPrefix(legacyCT, "application/json") {
			t.Errorf("%s: legacy error unexpectedly JSON", tc.path)
		}
	}
}

// TestBatchHTTPRoundTrip drives a heterogeneous batch through POST
// /v1/batch via RemoteClient.Batch and checks every answer against
// the corresponding local single-query API.
func TestBatchHTTPRoundTrip(t *testing.T) {
	items, uni := UniformDataset(4000, 13)
	db, err := Open(items, uni, &Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()

	rc := NewRemoteClient(srv.URL)
	if _, _, err := rc.Info(context.Background()); err != nil {
		t.Fatal(err)
	}

	w := R(0.4, 0.4, 0.5, 0.52)
	reqs := []BatchRequest{
		{Op: BatchNN, Q: Pt(0.4, 0.6), K: 2},
		{Op: BatchKNN, Q: Pt(0.2, 0.2), K: 5},
		{Op: BatchWindow, W: w},
		{Op: BatchRange, Q: Pt(0.5, 0.5), Radius: 0.03},
		{Op: BatchCount, W: w},
		{Op: BatchSearch, W: w},
		{Op: BatchNN, Q: Pt(0.4, 0.6), K: 0}, // per-request error
	}
	ctx := context.Background()
	got, err := rc.Batch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("got %d responses, want %d", len(got), len(reqs))
	}

	ids := func(items []Item) []int64 {
		out := make([]int64, len(items))
		for i, it := range items {
			out[i] = it.ID
		}
		return out
	}
	v, _, err := db.NN(ctx, Pt(0.4, 0.6), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids(got[0].NN.Result()), ids(v.Result())) {
		t.Error("batch NN answer differs from local NN")
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		p := Pt(rng.Float64(), rng.Float64())
		if got[0].NN.Valid(p) != v.Valid(p) {
			t.Fatalf("batch NN validity differs at %v", p)
		}
	}
	nbs, err := db.KNearest(ctx, Pt(0.2, 0.2), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[1].Neighbors, nbs) {
		t.Error("batch kNN answer differs from local KNearest")
	}
	wv, _, err := db.Window(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids(got[2].Window.Result), ids(wv.Result)) {
		t.Error("batch window result differs from local Window")
	}
	rv, _, err := db.Range(ctx, Pt(0.5, 0.5), 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids(got[3].Range.Result), ids(rv.Result)) {
		t.Error("batch range result differs from local Range")
	}
	count, err := db.Count(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if got[4].Count != count {
		t.Errorf("batch count %d, want %d", got[4].Count, count)
	}
	its, err := db.RangeSearch(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[5].Items, its) {
		t.Error("batch search items differ from local RangeSearch")
	}
	if got[6].Err == nil {
		t.Error("k=0 NN request did not carry a per-request error")
	}
}

// TestBatchHTTPRejects locks the batch endpoint's client-error paths.
func TestBatchHTTPRejects(t *testing.T) {
	items, uni := UniformDataset(500, 14)
	db, err := Open(items, uni, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()

	post := func(body string) (int, []byte) {
		resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}
	if code, body := post(`{"requests":[{"op":"teleport"}]}`); code != http.StatusBadRequest ||
		!strings.Contains(string(body), "unknown op") {
		t.Errorf("unknown op: got %d %q", code, body)
	}
	if code, _ := post(`{"requests":`); code != http.StatusBadRequest {
		t.Errorf("truncated body: got %d, want 400", code)
	}
	resp, err := http.Get(srv.URL + "/v1/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/batch: got %d, want 405", resp.StatusCode)
	}
}

// TestRemoteClientOptions exercises the functional options: base
// headers ride on every request, and WithTimeout bounds it.
func TestRemoteClientOptions(t *testing.T) {
	items, uni := UniformDataset(500, 15)
	db, err := Open(items, uni, nil)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seen []string
	wrapped := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get("X-Auth"))
		mu.Unlock()
		db.Handler().ServeHTTP(w, r)
	})
	srv := httptest.NewServer(wrapped)
	defer srv.Close()

	rc := NewRemoteClient(srv.URL,
		WithTimeout(5*time.Second),
		WithBaseHeader("X-Auth", "token-1"))
	if rc.httpClient().Timeout != 5*time.Second {
		t.Errorf("WithTimeout: client timeout %v, want 5s", rc.httpClient().Timeout)
	}
	ctx := context.Background()
	if _, _, err := rc.Info(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.NN(ctx, Pt(0.5, 0.5), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Batch(ctx, []BatchRequest{{Op: BatchCount, W: uni}}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 {
		t.Fatalf("saw %d requests, want 3", len(seen))
	}
	for i, h := range seen {
		if h != "token-1" {
			t.Errorf("request %d: X-Auth %q, want token-1 (WithBaseHeader)", i, h)
		}
	}
}

// TestCacheUnderConcurrentMutation hammers a cached DB with concurrent
// Insert/Delete and Batch traffic (run under -race), then quiesces the
// writers and checks that every subsequent cache hit matches a fresh
// uncached answer and that its region contains the query point.
func TestCacheUnderConcurrentMutation(t *testing.T) {
	for _, shards := range []int{0, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			items, uni := UniformDataset(3000, 16)
			db, err := Open(items, uni, &Options{Shards: shards, CacheSize: 512})
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			queries := make([]Point, 32)
			rng := rand.New(rand.NewSource(99))
			for i := range queries {
				queries[i] = Pt(rng.Float64(), rng.Float64())
			}
			// Phase 1: readers and writers race. Hits served mid-mutation
			// must still be geometrically self-consistent: the region
			// proves its own answer at the query point.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					wrng := rand.New(rand.NewSource(seed))
					id := int64(1_000_000 + seed*10_000)
					for {
						select {
						case <-stop:
							return
						default:
						}
						it := Item{ID: id, P: Pt(wrng.Float64(), wrng.Float64())}
						if err := db.Insert(it); err != nil {
							t.Error(err)
							return
						}
						if _, err := db.Delete(it); err != nil {
							t.Error(err)
							return
						}
						id++
					}
				}(int64(g + 1))
			}
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					brng := rand.New(rand.NewSource(seed))
					for i := 0; i < 40; i++ {
						reqs := make([]BatchRequest, 6)
						for j := range reqs {
							reqs[j] = BatchRequest{
								Op: BatchNN, Q: queries[brng.Intn(len(queries))], K: 1 + j%3,
							}
						}
						resps, err := db.Batch(ctx, reqs)
						if err != nil {
							t.Error(err)
							return
						}
						for j, resp := range resps {
							if resp.Err != nil {
								t.Errorf("request %d: %v", j, resp.Err)
								return
							}
							if resp.CacheHit && !resp.NN.Valid(reqs[j].Q) {
								t.Errorf("hit region does not contain its query point %v", reqs[j].Q)
								return
							}
						}
					}
				}(int64(100 + g))
			}
			time.Sleep(50 * time.Millisecond)
			close(stop)
			wg.Wait()
			if t.Failed() {
				return
			}

			// Phase 2: writers quiesced. A sentinel mutation empties the
			// cache, so the first query is the fresh, uncached ground
			// truth; the second must hit and be identical.
			for i, q := range queries {
				sentinel := Item{ID: int64(9_000_000 + i), P: Pt(0.5, 0.5)}
				if err := db.Insert(sentinel); err != nil {
					t.Fatal(err)
				}
				if _, err := db.Delete(sentinel); err != nil {
					t.Fatal(err)
				}
				k := 1 + i%3
				fresh, err := db.Batch(ctx, []BatchRequest{{Op: BatchNN, Q: q, K: k}})
				if err != nil {
					t.Fatal(err)
				}
				again, err := db.Batch(ctx, []BatchRequest{{Op: BatchNN, Q: q, K: k}})
				if err != nil {
					t.Fatal(err)
				}
				hit := again[0]
				if !hit.CacheHit {
					t.Fatalf("query %v k=%d: no cache hit after quiescing", q, k)
				}
				if !hit.NN.Valid(q) {
					t.Errorf("query %v: hit region does not contain the query point", q)
				}
				if !reflect.DeepEqual(hit.NN, fresh[0].NN) {
					t.Errorf("query %v k=%d: cache hit differs from fresh uncached answer", q, k)
				}
				if hit.Cost.Total() != 0 {
					t.Errorf("query %v: cache hit cost %d node accesses, want 0", q, hit.Cost.Total())
				}
			}
		})
	}
}
