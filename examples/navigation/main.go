// Navigation: the paper's motivating scenario. A driver moves through a
// road network (GR-like dataset of street-segment centroids) asking
// "where is my nearest point of interest?" at every position update.
// Compare how many updates actually reach the server under each
// protocol: naive re-querying, the paper's validity regions, SR01 m-NN
// buffering, TP02 time-parameterized queries, and ZL01 precomputed
// Voronoi cells.
package main

import (
	"fmt"

	"lbsq"
	"lbsq/internal/trajectory"
)

func main() {
	items, universe := lbsq.GRLikeDataset(23_268, 7)
	db, err := lbsq.Open(items, universe, &lbsq.Options{BufferFraction: 0.10})
	if err != nil {
		panic(err)
	}
	fmt.Printf("dataset: %d street-segment centroids in %.0f km x %.0f km\n\n",
		db.Len(), universe.Width()/1000, universe.Height()/1000)

	const steps = 3000
	const stepLen = 250.0 // meters per position update (~city driving at 1 Hz)
	path := trajectory.Manhattan(universe, 2000, stepLen, steps, 11)
	headings := trajectory.Headings(path)

	fmt.Printf("%-32s %14s %10s %12s\n", "client", "server queries", "rate", "KB received")

	report := func(name string, st lbsq.ClientStats) {
		fmt.Printf("%-32s %14d %9.2f%% %12.1f\n",
			name, st.ServerQueries, 100*st.QueryRate(), float64(st.BytesReceived)/1024)
	}

	naive, err := db.NewNaiveClient(1)
	if err != nil {
		panic(err)
	}
	for _, p := range path {
		must(naive.At(p))
	}
	report("naive (re-query every update)", naive.Stats)

	vr := db.NewNNClient(1)
	for _, p := range path {
		must(vr.At(p))
	}
	report("validity region (this paper)", vr.Stats)

	sr, err := db.NewSR01Client(1, 8)
	if err != nil {
		panic(err)
	}
	for _, p := range path {
		must(sr.At(p))
	}
	report("SR01 (m=8 buffered neighbors)", sr.Stats)

	tp, err := db.NewTP02Client(1)
	if err != nil {
		panic(err)
	}
	for i, p := range path {
		must(tp.At(p, headings[i]))
	}
	report("TP02 (straight-line validity)", tp.Stats)

	zl, err := db.NewZL01Client(stepLen)
	if err != nil {
		panic(err)
	}
	for i, p := range path {
		if _, err := zl.At(p, float64(i)); err != nil {
			panic(err)
		}
	}
	report("ZL01 (Voronoi, max-speed time)", zl.Stats)

	fmt.Println("\nThe validity-region client needs no tuning parameter (unlike")
	fmt.Println("SR01's m and ZL01's max speed) and survives turns (unlike TP02,")
	fmt.Println("which must re-query whenever the heading changes).")
}

func must(items []lbsq.Item, err error) []lbsq.Item {
	if err != nil {
		panic(err)
	}
	return items
}
