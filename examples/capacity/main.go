// Capacity: use the Section-5 analytical models to answer deployment
// questions without running a workload — how large will validity
// regions be, how often will clients re-query, and what I/O will the
// server pay per query? Then verify the predictions against a measured
// workload on a skewed dataset via the Minskew histogram.
package main

import (
	"context"
	"fmt"
	"math"

	"lbsq"
	"lbsq/internal/costmodel"
	"lbsq/internal/dataset"
	"lbsq/internal/histogram"
)

func main() {
	// Plan for an NA-like deployment: 120k populated places.
	d := dataset.NALike(120_000, 5)
	db, err := lbsq.Open(d.Items, d.Universe, nil)
	if err != nil {
		panic(err)
	}
	hist, err := histogram.Build(d.Points(), d.Universe, 100, 100, 500)
	if err != nil {
		panic(err)
	}

	fmt.Println("--- model predictions (no queries executed) ---")
	globalDensity := float64(len(d.Items)) / d.Universe.Area()
	for _, spot := range []struct {
		name string
		q    lbsq.Point
	}{
		{"dense metro", densestSpot(hist)},
		{"average", d.Universe.Center()},
	} {
		rho := hist.DensityForNN(spot.q, 1)
		if rho <= 0 {
			rho = globalDensity
		}
		area := costmodel.NNValidityArea(rho, 1)
		// A client re-queries roughly every sqrt(area) of travel.
		fmt.Printf("%-12s: local density %.3g pts/m², expected 1NN validity "+
			"region %.3g m² (~%.1f km between re-queries)\n",
			spot.name, rho, area, math.Sqrt(area)/1000)
	}

	// Window query planning: a 50 km × 50 km viewport.
	side := 50_000.0
	rho := globalDensity
	wArea := costmodel.WindowValidityArea(rho, side, side)
	dx, dy := costmodel.InnerRectExtents(rho, side, side)
	stats := db.Server().Tree.Stats()
	na1 := costmodel.WindowNodeAccesses(stats, side, side, d.Universe.Area())
	na2 := costmodel.LocationWindowSecondQueryNA(stats, rho, side, side, d.Universe.Area())
	fmt.Printf("\n50 km viewport: expected validity area %.3g m² "+
		"(inner rect ±%.0f m × ±%.0f m)\n", wArea, dx, dy)
	fmt.Printf("predicted I/O: %.1f node accesses for the result + %.1f for influence objects\n", na1, na2)

	// --- verify against a measured workload -----------------------------
	fmt.Println("\n--- measured (500-query workload) ---")
	queries := dataset.QueryPoints(d, 500, 99)
	var sumArea, sumNA1, sumNA2 float64
	for _, q := range queries {
		wv, cost, err := db.WindowAt(context.Background(), q, side, side)
		if err != nil {
			panic(err)
		}
		sumArea += wv.Region.Area()
		sumNA1 += float64(cost.ResultNA)
		sumNA2 += float64(cost.InfNA)
	}
	n := float64(len(queries))
	fmt.Printf("mean window validity area: %.3g m²\n", sumArea/n)
	fmt.Printf("mean I/O: %.1f + %.1f node accesses\n", sumNA1/n, sumNA2/n)
	fmt.Println("\n(the skew-aware per-query estimate is exercised in Fig. 30:")
	fmt.Println(" run `go run ./cmd/lbsq-bench -fig 30`)")
}

// densestSpot returns the center of the densest histogram bucket.
func densestSpot(h *histogram.Histogram) lbsq.Point {
	best, bestD := lbsq.Point{}, -1.0
	for _, b := range h.Buckets {
		if d := b.Density(); d > bestD {
			bestD, best = d, b.Rect.Center()
		}
	}
	return best
}
