// Quickstart: open a dataset, ask one location-based NN query and one
// location-based window query, and use the returned validity regions to
// answer follow-up positions without touching the server.
package main

import (
	"context"
	"fmt"

	"lbsq"
)

func main() {
	// 100k uniform points in the unit square (a synthetic city of POIs).
	items, universe := lbsq.UniformDataset(100_000, 42)
	db, err := lbsq.Open(items, universe, nil)
	if err != nil {
		panic(err)
	}

	// --- Location-based nearest neighbor --------------------------------
	me := lbsq.Pt(0.4, 0.6)
	v, cost, err := db.NN(context.Background(), me, 1)
	if err != nil {
		panic(err)
	}
	nn := v.Neighbors[0]
	fmt.Printf("nearest neighbor of %v: point %d at %v (dist %.4g)\n",
		me, nn.Item.ID, nn.Item.P, nn.Dist)
	fmt.Printf("validity region: %d edges, area %.3g, %d influence objects\n",
		v.Region.Edges(), v.Region.Area(), len(v.Influence))
	fmt.Printf("server cost: %d node accesses (%d for the NN, %d for %d TP probes)\n",
		cost.Total(), cost.ResultNA, cost.InfNA, cost.TPQueries)

	// While we stay inside the region the answer provably cannot change —
	// no server round trip needed.
	for _, move := range []lbsq.Point{lbsq.Pt(0.4005, 0.6), lbsq.Pt(0.41, 0.62), lbsq.Pt(0.5, 0.7)} {
		if v.Valid(move) {
			fmt.Printf("  at %v: still %d (checked locally)\n", move, nn.Item.ID)
		} else {
			fmt.Printf("  at %v: left the validity region -> re-query\n", move)
		}
	}

	// --- Location-based window query ------------------------------------
	// A 0.05×0.05 viewport centered on us (e.g. POIs on screen).
	w, _, err := db.WindowAt(context.Background(), me, 0.05, 0.05)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nwindow result: %d points; validity region area %.3g "+
		"(%d inner + %d outer influence objects)\n",
		len(w.Result), w.Region.Area(), len(w.InnerInfluence), len(w.OuterInfluence))
	fmt.Printf("conservative rectangle: %v\n", w.Conservative)

	// The compact wire form is what a mobile client would receive.
	fmt.Printf("\nwire sizes: NN response %d bytes, window response %d bytes\n",
		len(lbsq.EncodeNN(v)), len(lbsq.EncodeWindow(w)))
}
