// Proximity: the paper's future-work extension (Sec. 7) in action —
// region queries like "all restaurants within 5 km", whose validity
// regions are bounded by circular arcs. A courier rides through a city
// with a 5 km proximity list; the server returns, along with the list,
// the arc-bounded region within which the list provably cannot change,
// so the client checks validity with a handful of distance comparisons.
package main

import (
	"context"
	"fmt"

	"lbsq"
	"lbsq/internal/trajectory"
)

func main() {
	items, universe := lbsq.GRLikeDataset(23_268, 7)
	db, err := lbsq.Open(items, universe, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("dataset: %d points in %.0f km x %.0f km\n\n",
		db.Len(), universe.Width()/1000, universe.Height()/1000)

	// A single query, inspected.
	me := lbsq.Pt(400_000, 400_000)
	const radius = 5_000.0 // 5 km
	rv, cost, err := db.Range(context.Background(), me, radius)
	if err != nil {
		panic(err)
	}
	fmt.Printf("within 5 km of %v: %d points (%d node accesses)\n",
		me, len(rv.Result), cost.Total())
	fmt.Printf("validity region: %d inner + %d outer influence objects, "+
		"safe travel %.0f m in any direction\n",
		len(rv.InnerInfluence), len(rv.OuterInfluence), rv.SafeDistance(me))
	fmt.Printf("estimated region area: %.3g m² (grid quadrature)\n\n", rv.AreaEstimate(300))

	// The courier's ride: 3000 position updates at 100 m steps.
	client := db.NewRangeClient(radius)
	path := trajectory.Manhattan(universe, 1000, 100, 3000, 11)
	for _, p := range path {
		if _, err := client.At(p); err != nil {
			panic(err)
		}
	}
	st := client.Stats
	fmt.Printf("ride: %d updates, %d server queries (%.2f%%), %d cache hits\n",
		st.PositionUpdates, st.ServerQueries, 100*st.QueryRate(), st.CacheHits)
	fmt.Printf("network: %.1f KB total (%.0f bytes per update)\n",
		float64(st.BytesReceived)/1024, float64(st.BytesReceived)/float64(st.PositionUpdates))
	if rv := client.Cached(); rv != nil {
		fmt.Printf("current list: %d points, next guaranteed-safe travel %.0f m\n",
			len(rv.Result), rv.SafeDistance(path[len(path)-1]))
	}
}
