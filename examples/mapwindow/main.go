// Mapwindow: a moving map viewport over a population dataset. The
// client renders all points inside a fixed-size window centered on its
// position (think "places on screen while panning a map"). With
// location-based window queries the server also returns the validity
// region of the current screen contents, so most panning motions redraw
// from cache.
package main

import (
	"fmt"

	"lbsq"
	"lbsq/internal/trajectory"
)

func main() {
	items, universe := lbsq.NALikeDataset(120_000, 5)
	db, err := lbsq.Open(items, universe, &lbsq.Options{BufferFraction: 0.10})
	if err != nil {
		panic(err)
	}
	fmt.Printf("dataset: %d populated places in %.0f km x %.0f km\n\n",
		db.Len(), universe.Width()/1000, universe.Height()/1000)

	// Viewport: 60 km × 40 km (a regional map view); the user pans in
	// 500 m steps along a random-waypoint path.
	const qx, qy = 60_000.0, 40_000.0
	path := trajectory.RandomWaypoint(universe, 500, 4000, 3)

	client := db.NewWindowClient(qx, qy)
	redraws, cached := 0, 0
	var lastCount int
	for _, f := range path {
		result, err := client.At(f)
		if err != nil {
			panic(err)
		}
		if client.Stats.ServerQueries > redraws {
			redraws = client.Stats.ServerQueries
			lastCount = len(result)
		} else {
			cached++
		}
	}

	fmt.Printf("position updates  : %d\n", client.Stats.PositionUpdates)
	fmt.Printf("server refreshes  : %d (%.2f%% of updates)\n",
		client.Stats.ServerQueries, 100*client.Stats.QueryRate())
	fmt.Printf("served from cache : %d\n", cached)
	fmt.Printf("network volume    : %.1f KB total, %.1f bytes per update\n",
		float64(client.Stats.BytesReceived)/1024,
		float64(client.Stats.BytesReceived)/float64(client.Stats.PositionUpdates))
	fmt.Printf("last screen holds : %d places\n", lastCount)

	if wv := client.Cached(); wv != nil {
		fmt.Printf("\ncurrent validity region: inner rect %.1f x %.1f km, "+
			"%d inner / %d outer influence objects\n",
			wv.InnerRect.Width()/1000, wv.InnerRect.Height()/1000,
			len(wv.InnerInfluence), len(wv.OuterInfluence))
		fmt.Printf("conservative safe rectangle: %.1f x %.1f km\n",
			wv.Conservative.Width()/1000, wv.Conservative.Height()/1000)
	}
}
