package lbsq

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"
)

func TestOpenAndQuery(t *testing.T) {
	items, uni := UniformDataset(5000, 1)
	db, err := Open(items, uni, nil)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 5000 || db.Universe() != uni {
		t.Fatalf("Len=%d universe=%v", db.Len(), db.Universe())
	}
	v, cost, err := db.NN(context.Background(), Pt(0.5, 0.5), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Neighbors) != 3 || v.Region.IsEmpty() || cost.Total() == 0 {
		t.Fatalf("NN answer incomplete: %d neighbors, region empty=%v", len(v.Neighbors), v.Region.IsEmpty())
	}
	if !v.Valid(Pt(0.5, 0.5)) {
		t.Fatal("query point must be valid")
	}
	wv, _, err := db.WindowAt(context.Background(), Pt(0.5, 0.5), 0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if wv.Region == nil || !wv.Valid(Pt(0.5, 0.5)) {
		t.Fatal("window answer incomplete")
	}
	// Plain queries.
	if got, err := db.KNearest(context.Background(), Pt(0.2, 0.2), 5); err != nil || len(got) != 5 {
		t.Fatalf("KNearest returned %d (err %v)", len(got), err)
	}
	if got, err := db.RangeSearch(context.Background(), uni); err != nil || len(got) != 5000 {
		t.Fatalf("RangeSearch universe returned %d (err %v)", len(got), err)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(nil, R(1, 1, 0, 0), nil); err == nil {
		t.Error("empty universe must error")
	}
	items := []Item{{ID: 1, P: Pt(5, 5)}}
	if _, err := Open(items, R(0, 0, 1, 1), nil); err == nil {
		t.Error("out-of-universe item must error")
	}
}

func TestInsertDelete(t *testing.T) {
	db, err := Open(nil, R(0, 0, 1, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(Item{ID: 1, P: Pt(0.3, 0.3)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(Item{ID: 2, P: Pt(2, 2)}); err == nil {
		t.Error("insert outside universe must error")
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
	if ok, err := db.Delete(Item{ID: 1, P: Pt(0.3, 0.3)}); err != nil || !ok {
		t.Fatalf("delete failed: ok=%v err=%v", ok, err)
	}
	if ok, err := db.Delete(Item{ID: 1, P: Pt(0.3, 0.3)}); err != nil || ok {
		t.Fatalf("double delete must report absent: ok=%v err=%v", ok, err)
	}
}

func TestClientsViaFacade(t *testing.T) {
	items, uni := UniformDataset(3000, 2)
	db, err := Open(items, uni, &Options{BufferFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	nnc := db.NewNNClient(1)
	if _, err := nnc.At(Pt(0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	wc := db.NewWindowClient(0.05, 0.05)
	if _, err := wc.At(Pt(0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	sr, err := db.NewSR01Client(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.At(Pt(0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	tp, err := db.NewTP02Client(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tp.At(Pt(0.5, 0.5), Pt(1, 0)); err != nil {
		t.Fatal(err)
	}
	nv, err := db.NewNaiveClient(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nv.At(Pt(0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	zl, err := db.NewZL01Client(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zl.At(Pt(0.5, 0.5), 0); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	items, uni := UniformDataset(2000, 3)
	db, err := Open(items, uni, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()

	rc := &RemoteClient{Base: srv.URL}
	count, gotUni, err := rc.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if count != 2000 || gotUni != uni {
		t.Fatalf("info: count=%d universe=%v", count, gotUni)
	}
	v, err := rc.NN(context.Background(), Pt(0.4, 0.6), 2)
	if err != nil {
		t.Fatal(err)
	}
	local, _, err := db.NN(context.Background(), Pt(0.4, 0.6), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Neighbors) != 2 || v.Neighbors[0].Item.ID != local.Neighbors[0].Item.ID {
		t.Fatalf("remote NN differs: %v vs %v", v.Neighbors, local.Neighbors)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		p := Pt(rng.Float64(), rng.Float64())
		if v.Valid(p) != local.Valid(p) {
			t.Fatalf("remote validity differs at %v", p)
		}
	}
	wv, err := rc.Window(context.Background(), Pt(0.5, 0.5), 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	localW, _, err := db.WindowAt(context.Background(), Pt(0.5, 0.5), 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(wv.Result) != len(localW.Result) {
		t.Fatalf("remote window result differs: %d vs %d", len(wv.Result), len(localW.Result))
	}
}

func TestHTTPErrors(t *testing.T) {
	items, uni := UniformDataset(100, 4)
	db, _ := Open(items, uni, nil)
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()
	rc := &RemoteClient{Base: srv.URL}
	if _, err := rc.NN(context.Background(), Pt(0.5, 0.5), 0); err == nil {
		t.Error("k=0 must error")
	}
	if _, err := rc.NN(context.Background(), Pt(0.5, 0.5), 1000); err == nil {
		t.Error("k > n must error")
	}
	if _, err := rc.Window(context.Background(), Pt(0.5, 0.5), -1, 0.1); err == nil {
		t.Error("negative window must error")
	}
	if _, _, err := (&RemoteClient{Base: "http://127.0.0.1:1"}).Info(context.Background()); err == nil {
		t.Error("unreachable server must error")
	}
}

func TestWindowAndCount(t *testing.T) {
	items, uni := UniformDataset(4000, 11)
	db, err := Open(items, uni, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := R(0.2, 0.2, 0.6, 0.5)
	wv, cost, err := db.Window(context.Background(), w)
	if err != nil {
		t.Fatalf("Window: %v", err)
	}
	if cost.Total() == 0 {
		t.Fatal("window cost missing")
	}
	// Count agrees with the enumerated result.
	if got, err := db.Count(context.Background(), w); err != nil || got != len(wv.Result) {
		t.Fatalf("Count = %d, result = %d (err %v)", got, len(wv.Result), err)
	}
	if got, err := db.Count(context.Background(), uni); err != nil || got != 4000 {
		t.Fatalf("universe count = %d (err %v)", got, err)
	}
	if got, err := db.Count(context.Background(), R(2, 2, 3, 3)); err != nil || got != 0 {
		t.Fatalf("empty window count = %d (err %v)", got, err)
	}
}

func TestSkewedDatasetFacades(t *testing.T) {
	gr, grUni := GRLikeDataset(2000, 1)
	if len(gr) != 2000 || grUni.Width() != 800_000 {
		t.Fatalf("GR facade: %d items in %v", len(gr), grUni)
	}
	na, naUni := NALikeDataset(2000, 1)
	if len(na) != 2000 || naUni.Width() != 7_000_000 {
		t.Fatalf("NA facade: %d items in %v", len(na), naUni)
	}
	for _, it := range gr {
		if !grUni.Contains(it.P) {
			t.Fatal("GR point outside universe")
		}
	}
	db, err := Open(na, naUni, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.NN(context.Background(), naUni.Center(), 1); err != nil {
		t.Fatal(err)
	}
}
