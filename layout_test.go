package lbsq

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestLayoutValidation table-drives Options.Layout acceptance: known
// layouts open, unknown ones fail with ErrUnknownLayout, and the arena
// layout refuses sharding.
func TestLayoutValidation(t *testing.T) {
	items, uni := UniformDataset(500, 3)
	cases := []struct {
		name    string
		opts    Options
		wantErr error
	}{
		{"default", Options{}, nil},
		{"pointer", Options{Layout: LayoutPointer}, nil},
		{"arena", Options{Layout: LayoutArena}, nil},
		{"unknown", Options{Layout: "slab"}, ErrUnknownLayout},
		{"case-sensitive", Options{Layout: "Arena"}, ErrUnknownLayout},
		{"arena-sharded", Options{Layout: LayoutArena, Shards: 4}, ErrShardedUnsupported},
		{"pointer-sharded", Options{Layout: LayoutPointer, Shards: 4}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db, err := Open(items, uni, &tc.opts)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("Open err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			wantArena := tc.opts.Layout == LayoutArena
			if db.server != nil && db.server.UsingArena() != wantArena {
				t.Fatalf("UsingArena = %v, want %v", db.server.UsingArena(), wantArena)
			}
		})
	}
}

// TestLayoutEquivalence opens the same dataset under both layouts
// (buffered, so page faults are modelled too) and asserts every public
// query returns identical answers with identical QueryCost — the
// contract that makes Layout a pure performance switch.
func TestLayoutEquivalence(t *testing.T) {
	items, uni := UniformDataset(4000, 17)
	open := func(layout string) *DB {
		db, err := Open(items, uni, &Options{Layout: layout, BufferFraction: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	ptr, arn := open(LayoutPointer), open(LayoutArena)
	ctx := context.Background()
	for trial := 0; trial < 25; trial++ {
		q := Pt(0.04*float64(trial)+0.01, 1-0.039*float64(trial))
		w := R(0.2, 0.3, 0.2+0.02*float64(trial), 0.3+0.025*float64(trial))

		v1, c1, err1 := ptr.NN(ctx, q, 3)
		v2, c2, err2 := arn.NN(ctx, q, 3)
		if err1 != nil || err2 != nil {
			t.Fatalf("NN: %v / %v", err1, err2)
		}
		if !reflect.DeepEqual(v1, v2) || c1 != c2 {
			t.Fatalf("NN(%v): results or costs differ: %+v vs %+v", q, c1, c2)
		}

		w1, cw1, ew1 := ptr.Window(ctx, w)
		w2, cw2, ew2 := arn.Window(ctx, w)
		if ew1 != nil || ew2 != nil {
			t.Fatalf("Window: %v / %v", ew1, ew2)
		}
		if !reflect.DeepEqual(w1, w2) || cw1 != cw2 {
			t.Fatalf("Window(%v): results or costs differ: %+v vs %+v", w, cw1, cw2)
		}

		r1, cr1, er1 := ptr.Range(ctx, q, 0.07)
		r2, cr2, er2 := arn.Range(ctx, q, 0.07)
		if er1 != nil || er2 != nil {
			t.Fatalf("Range: %v / %v", er1, er2)
		}
		if !reflect.DeepEqual(r1, r2) || cr1 != cr2 {
			t.Fatalf("Range(%v): results or costs differ: %+v vs %+v", q, cr1, cr2)
		}

		n1, en1 := ptr.Count(ctx, w)
		n2, en2 := arn.Count(ctx, w)
		if en1 != nil || en2 != nil {
			t.Fatalf("Count: %v / %v", en1, en2)
		}
		if n1 != n2 {
			t.Fatalf("Count(%v): %d vs %d", w, n1, n2)
		}
		s1, es1 := ptr.RangeSearch(ctx, w)
		s2, es2 := arn.RangeSearch(ctx, w)
		if es1 != nil || es2 != nil {
			t.Fatalf("RangeSearch: %v / %v", es1, es2)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("RangeSearch(%v) differs", w)
		}
		k1, ek1 := ptr.KNearest(ctx, q, 5)
		k2, ek2 := arn.KNearest(ctx, q, 5)
		if ek1 != nil || ek2 != nil {
			t.Fatalf("KNearest: %v / %v", ek1, ek2)
		}
		if !reflect.DeepEqual(k1, k2) {
			t.Fatalf("KNearest(%v) differs", q)
		}
	}
	route1, err1 := ptr.RouteNN(ctx, Pt(0.1, 0.1), Pt(0.9, 0.8))
	route2, err2 := arn.RouteNN(ctx, Pt(0.1, 0.1), Pt(0.9, 0.8))
	if err1 != nil || err2 != nil {
		t.Fatalf("RouteNN: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(route1, route2) {
		t.Fatal("RouteNN differs across layouts")
	}
}

// TestArenaRefreshOnWrite verifies mutations re-freeze the arena: after
// Insert/Delete the arena read path serves the updated dataset.
func TestArenaRefreshOnWrite(t *testing.T) {
	items, uni := UniformDataset(300, 5)
	db, err := Open(items, uni, &Options{Layout: LayoutArena})
	if err != nil {
		t.Fatal(err)
	}
	if !db.server.UsingArena() {
		t.Fatal("arena layout not active")
	}
	ctx := context.Background()
	extra := Item{ID: 10_000, P: Pt(0.123, 0.456)}
	if err := db.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if !db.server.UsingArena() {
		t.Fatal("arena layout lost after Insert")
	}
	if db.Len() != 301 {
		t.Fatalf("Len = %d, want 301", db.Len())
	}
	nbs, err := db.KNearest(ctx, extra.P, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) != 1 || nbs[0].Item.ID != extra.ID {
		t.Fatalf("nearest after insert = %v, want item %d", nbs, extra.ID)
	}
	ok, err := db.Delete(extra)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if db.Len() != 300 {
		t.Fatalf("Len after delete = %d, want 300", db.Len())
	}
	nbs, err = db.KNearest(ctx, extra.P, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) == 1 && nbs[0].Item.ID == extra.ID {
		t.Fatal("deleted item still served by arena read path")
	}
}

// TestOpenIndexDefaultsToArena checks the read-only snapshot path
// auto-selects the arena layout (and that LayoutPointer opts out).
func TestOpenIndexDefaultsToArena(t *testing.T) {
	items, uni := UniformDataset(400, 6)
	src, err := Open(items, uni, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.idx")
	if err := src.SaveIndex(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	snap, err := OpenIndex(path, uni, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Server().UsingArena() {
		t.Fatal("OpenIndex did not default to the arena layout")
	}
	ptr, err := OpenIndex(path, uni, &Options{Layout: LayoutPointer})
	if err != nil {
		t.Fatal(err)
	}
	if ptr.Server().UsingArena() {
		t.Fatal("OpenIndex ignored LayoutPointer")
	}
	ctx := context.Background()
	v1, _, err := snap.NN(ctx, Pt(0.5, 0.5), 2)
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := src.NN(ctx, Pt(0.5, 0.5), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v1.Neighbors, v2.Neighbors) {
		t.Fatal("snapshot arena answers differ from source DB")
	}
}
