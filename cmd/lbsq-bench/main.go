// Command lbsq-bench regenerates the paper's evaluation (Section 6):
// one experiment per figure, printed as aligned tables of the same
// series the paper plots.
//
// Usage:
//
//	lbsq-bench                 # run everything at reduced (quick) scale
//	lbsq-bench -fig 22a        # one experiment
//	lbsq-bench -full           # paper-scale cardinalities (up to 1000k)
//	lbsq-bench -list           # list experiment ids
//	lbsq-bench -queries 500    # workload size per data point
//	lbsq-bench -metrics=false  # suppress the per-experiment metrics summary
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"lbsq/internal/experiments"
	"lbsq/internal/obs"
)

func main() {
	var (
		fig     = flag.String("fig", "", "experiment id to run (default: all); see -list")
		full    = flag.Bool("full", false, "paper-scale cardinalities (slow)")
		queries = flag.Int("queries", 0, "queries per workload (default 200, 500 with -full)")
		seed    = flag.Int64("seed", 2003, "random seed")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		csvOut  = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		shards  = flag.Int("shards", 0, "shard count for the shards experiment (0 = 1/2/4/8 sweep)")
		metrics = flag.Bool("metrics", true, "print a summary of metrics that moved after each experiment")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Figure)
		}
		return
	}

	reg := obs.NewRegistry()
	cfg := experiments.Config{Full: *full, Queries: *queries, Seed: *seed, Shards: *shards, Obs: reg}
	start := time.Now()
	print := func(t experiments.Table) {
		if *csvOut {
			t.Fcsv(os.Stdout)
		} else {
			t.Fprint(os.Stdout)
		}
	}
	run := func(e experiments.Experiment) {
		if !*csvOut {
			fmt.Printf("=== %s ===\n", e.Figure)
		}
		before := metricTotals(reg)
		for _, t := range e.Run(cfg) {
			print(t)
		}
		if *metrics {
			printMetricsSummary(os.Stdout, reg, before, *csvOut)
		}
	}
	if *fig == "" {
		for _, e := range experiments.All() {
			run(e)
		}
	} else {
		e, ok := experiments.Find(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "lbsq-bench: unknown experiment %q (use -list)\n", *fig)
			os.Exit(2)
		}
		run(e)
	}
	if *csvOut {
		fmt.Printf("# total wall time: %v\n", time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
	}
}

// metricTotals snapshots the registry as a flat series→total map
// (counter/gauge value, or histogram observation count).
func metricTotals(reg *obs.Registry) map[string]float64 {
	out := make(map[string]float64)
	for _, m := range reg.Snapshot() {
		out[seriesKey(m)] = seriesTotal(m)
	}
	return out
}

func seriesKey(m obs.Metric) string {
	if len(m.Labels) == 0 {
		return m.Name
	}
	keys := make([]string, 0, len(m.Labels))
	for k := range m.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(m.Name)
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%s", k, m.Labels[k])
	}
	sb.WriteByte('}')
	return sb.String()
}

func seriesTotal(m obs.Metric) float64 {
	if m.Kind == obs.KindHistogram {
		return float64(m.Count)
	}
	return m.Value
}

// printMetricsSummary prints the series whose totals moved during the
// experiment — the instruments light up only when the experiment built
// shard clusters, so quiet experiments print nothing.
func printMetricsSummary(w *os.File, reg *obs.Registry, before map[string]float64, csvOut bool) {
	type row struct {
		key   string
		delta float64
		m     obs.Metric
	}
	var rows []row
	for _, m := range reg.Snapshot() {
		key := seriesKey(m)
		if d := seriesTotal(m) - before[key]; d > 0 {
			rows = append(rows, row{key, d, m})
		}
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	prefix := ""
	if csvOut {
		prefix = "# "
	}
	fmt.Fprintf(w, "%smetrics moved this experiment:\n", prefix)
	for _, r := range rows {
		if r.m.Kind == obs.KindHistogram {
			fmt.Fprintf(w, "%s  %-48s +%.0f obs (mean %.1f)\n", prefix, r.key, r.delta, r.m.Mean())
		} else {
			fmt.Fprintf(w, "%s  %-48s +%.0f\n", prefix, r.key, r.delta)
		}
	}
	if !csvOut {
		fmt.Fprintln(w)
	}
}
