// Command lbsq-bench regenerates the paper's evaluation (Section 6):
// one experiment per figure, printed as aligned tables of the same
// series the paper plots.
//
// Usage:
//
//	lbsq-bench                 # run everything at reduced (quick) scale
//	lbsq-bench -fig 22a        # one experiment
//	lbsq-bench -full           # paper-scale cardinalities (up to 1000k)
//	lbsq-bench -list           # list experiment ids
//	lbsq-bench -queries 500    # workload size per data point
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lbsq/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "", "experiment id to run (default: all); see -list")
		full    = flag.Bool("full", false, "paper-scale cardinalities (slow)")
		queries = flag.Int("queries", 0, "queries per workload (default 200, 500 with -full)")
		seed    = flag.Int64("seed", 2003, "random seed")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		csvOut  = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		shards  = flag.Int("shards", 0, "shard count for the shards experiment (0 = 1/2/4/8 sweep)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Figure)
		}
		return
	}

	cfg := experiments.Config{Full: *full, Queries: *queries, Seed: *seed, Shards: *shards}
	start := time.Now()
	print := func(t experiments.Table) {
		if *csvOut {
			t.Fcsv(os.Stdout)
		} else {
			t.Fprint(os.Stdout)
		}
	}
	run := func(e experiments.Experiment) {
		if !*csvOut {
			fmt.Printf("=== %s ===\n", e.Figure)
		}
		for _, t := range e.Run(cfg) {
			print(t)
		}
	}
	if *fig == "" {
		for _, e := range experiments.All() {
			run(e)
		}
	} else {
		e, ok := experiments.Find(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "lbsq-bench: unknown experiment %q (use -list)\n", *fig)
			os.Exit(2)
		}
		run(e)
	}
	if *csvOut {
		fmt.Printf("# total wall time: %v\n", time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
	}
}
