// Command lbsq-replay drives a mobile-client simulation: a chosen
// trajectory model against a chosen protocol, reporting the server
// queries, cache hits and network volume — the research harness behind
// the motivation experiment, exposed as a flexible CLI.
//
// Usage:
//
//	lbsq-replay -protocol vr -k 1 -steps 5000
//	lbsq-replay -protocol sr01 -m 8 -traj manhattan
//	lbsq-replay -protocol all -dataset gr -steps 3000
//
// Protocols: vr (validity regions, this paper) | vr-delta | sr01 | tp02
// | zl01 | window | range | naive | all.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"lbsq"
	"lbsq/internal/geom"
	"lbsq/internal/trajectory"
)

func main() {
	var (
		kind     = flag.String("dataset", "uniform", "dataset: uniform | gr | na")
		n        = flag.Int("n", 100_000, "synthetic cardinality")
		seed     = flag.Int64("seed", 2003, "random seed")
		protocol = flag.String("protocol", "all", "vr | vr-delta | sr01 | tp02 | zl01 | window | range | naive | all")
		k        = flag.Int("k", 1, "neighbors for NN protocols")
		m        = flag.Int("m", 8, "buffered neighbors for sr01")
		traj     = flag.String("traj", "waypoint", "trajectory: waypoint | manhattan | directed")
		steps    = flag.Int("steps", 3000, "position updates")
		stepFrac = flag.Float64("step", 0.0005, "step length as a fraction of universe width")
		qsFrac   = flag.Float64("qs", 0.001, "window area fraction for the window protocol")
		radFrac  = flag.Float64("radius", 0.005, "radius fraction for the range protocol")
		regions  = flag.Int("regions", 1, "semantic-cache depth for vr/window")
	)
	flag.Parse()

	var items []lbsq.Item
	var uni lbsq.Rect
	switch *kind {
	case "uniform":
		items, uni = lbsq.UniformDataset(*n, *seed)
	case "gr":
		items, uni = lbsq.GRLikeDataset(*n, *seed)
	case "na":
		items, uni = lbsq.NALikeDataset(*n, *seed)
	default:
		fmt.Fprintf(os.Stderr, "lbsq-replay: unknown dataset %q\n", *kind)
		os.Exit(2)
	}
	db, err := lbsq.Open(items, uni, &lbsq.Options{BufferFraction: 0.10})
	if err != nil {
		log.Fatalf("lbsq-replay: %v", err)
	}

	step := uni.Width() * *stepFrac
	var path []geom.Point
	switch *traj {
	case "waypoint":
		path = trajectory.RandomWaypoint(uni, step, *steps, *seed+1)
	case "manhattan":
		path = trajectory.Manhattan(uni, uni.Width()/50, step, *steps, *seed+1)
	case "directed":
		path = trajectory.Directed(uni, uni.Center(), geom.Pt(1, 0.37).Unit(), step, *steps)
	default:
		fmt.Fprintf(os.Stderr, "lbsq-replay: unknown trajectory %q\n", *traj)
		os.Exit(2)
	}
	headings := trajectory.Headings(path)

	fmt.Printf("dataset=%s n=%d traj=%s steps=%d step=%.3g\n\n",
		*kind, db.Len(), *traj, len(path), step)
	fmt.Printf("%-12s %14s %10s %12s\n", "protocol", "server queries", "rate", "KB received")

	report := func(name string, st lbsq.ClientStats) {
		fmt.Printf("%-12s %14d %9.2f%% %12.1f\n",
			name, st.ServerQueries, 100*st.QueryRate(), float64(st.BytesReceived)/1024)
	}
	want := func(p string) bool { return *protocol == p || *protocol == "all" }

	if want("naive") {
		c, err := db.NewNaiveClient(*k)
		if err != nil {
			log.Fatalf("lbsq-replay: %v", err)
		}
		for _, p := range path {
			must1(c.At(p))
		}
		report("naive", c.Stats)
	}
	if want("vr") {
		c := db.NewNNClient(*k)
		c.Regions = *regions
		for _, p := range path {
			must1(c.At(p))
		}
		report("vr", c.Stats)
	}
	if want("vr-delta") {
		c := db.NewNNClient(*k)
		c.Delta = true
		c.Regions = *regions
		for _, p := range path {
			must1(c.At(p))
		}
		report("vr-delta", c.Stats)
	}
	if want("sr01") {
		c, err := db.NewSR01Client(*k, *m)
		if err != nil {
			log.Fatalf("lbsq-replay: %v", err)
		}
		for _, p := range path {
			must1(c.At(p))
		}
		report(fmt.Sprintf("sr01(m=%d)", *m), c.Stats)
	}
	if want("tp02") {
		c, err := db.NewTP02Client(*k)
		if err != nil {
			log.Fatalf("lbsq-replay: %v", err)
		}
		for i, p := range path {
			must1(c.At(p, headings[i]))
		}
		report("tp02", c.Stats)
	}
	if want("zl01") {
		zc, err := db.NewZL01Client(step)
		if err != nil {
			log.Fatalf("lbsq-replay: %v", err)
		}
		for i, p := range path {
			if _, err := zc.At(p, float64(i)); err != nil {
				log.Fatalf("lbsq-replay: %v", err)
			}
		}
		report("zl01", zc.Stats)
	}
	if want("window") {
		side := uni.Width() * math.Sqrt(*qsFrac)
		c := db.NewWindowClient(side, side)
		c.Regions = *regions
		for _, p := range path {
			must1(c.At(p))
		}
		report("window", c.Stats)
	}
	if want("range") {
		c := db.NewRangeClient(uni.Width() * *radFrac)
		for _, p := range path {
			must1(c.At(p))
		}
		report("range", c.Stats)
	}
}

func must1(items []lbsq.Item, err error) []lbsq.Item {
	if err != nil {
		log.Fatalf("lbsq-replay: %v", err)
	}
	return items
}
