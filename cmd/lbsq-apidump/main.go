// Command lbsq-apidump prints the exported API surface of a Go package
// as a stable, sorted, one-declaration-per-line text snapshot. The
// checked-in snapshot (docs/api.txt) makes public-API drift an explicit,
// reviewable diff: `make api-check` fails CI whenever the surface
// changes without the snapshot being regenerated alongside it.
//
// Usage:
//
//	lbsq-apidump [-dir .]
//
// The dump is purely syntactic (go/ast, no type checking), so it is
// fast, dependency-free, and independent of build tags beyond the
// default file set. Test files are excluded.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := flag.String("dir", ".", "package directory to dump")
	flag.Parse()

	lines, err := dump(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbsq-apidump: %v\n", err)
		os.Exit(1)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
}

// dump returns the sorted exported-API lines of the package in dir.
func dump(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}

	var lines []string
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		for _, file := range pkg.Files {
			lines = append(lines, dumpFile(file)...)
		}
	}
	sort.Strings(lines)
	return lines, nil
}

// dumpFile emits one line per exported declaration of the file.
func dumpFile(file *ast.File) []string {
	var lines []string
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if l := funcLine(d); l != "" {
				lines = append(lines, l)
			}
		case *ast.GenDecl:
			lines = append(lines, genLines(d)...)
		}
	}
	return lines
}

// funcLine renders one exported function or method ("" when unexported
// or attached to an unexported receiver).
func funcLine(d *ast.FuncDecl) string {
	if !d.Name.IsExported() {
		return ""
	}
	var b strings.Builder
	b.WriteString("func ")
	if d.Recv != nil && len(d.Recv.List) == 1 {
		recv := typeString(d.Recv.List[0].Type)
		if !exportedType(recv) {
			return ""
		}
		fmt.Fprintf(&b, "(%s) ", recv)
	}
	b.WriteString(d.Name.Name)
	b.WriteString(signature(d.Type))
	if deprecated(d.Doc) {
		b.WriteString("  // deprecated")
	}
	return b.String()
}

// genLines renders the exported declarations of one const/var/type
// block.
func genLines(d *ast.GenDecl) []string {
	var lines []string
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			lines = append(lines, typeLines(d, s)...)
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				kind := "const"
				if d.Tok == token.VAR {
					kind = "var"
				}
				l := kind + " " + name.Name
				if s.Type != nil {
					l += " " + typeString(s.Type)
				}
				if deprecated(firstDoc(d.Doc, s.Doc)) {
					l += "  // deprecated"
				}
				lines = append(lines, l)
			}
		}
	}
	return lines
}

// typeLines renders one exported type and, for structs and interfaces,
// one line per exported member.
func typeLines(d *ast.GenDecl, s *ast.TypeSpec) []string {
	if !s.Name.IsExported() {
		return nil
	}
	dep := ""
	if deprecated(firstDoc(d.Doc, s.Doc)) {
		dep = "  // deprecated"
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		lines := []string{"type " + s.Name.Name + " struct" + dep}
		for _, f := range t.Fields.List {
			ft := typeString(f.Type)
			fdep := ""
			if deprecated(f.Doc) {
				fdep = "  // deprecated"
			}
			if len(f.Names) == 0 { // embedded
				if exportedType(ft) {
					lines = append(lines, "type "+s.Name.Name+" struct, embed "+ft+fdep)
				}
				continue
			}
			for _, name := range f.Names {
				if name.IsExported() {
					lines = append(lines, "type "+s.Name.Name+" struct, field "+name.Name+" "+ft+fdep)
				}
			}
		}
		return lines
	case *ast.InterfaceType:
		lines := []string{"type " + s.Name.Name + " interface" + dep}
		for _, m := range t.Methods.List {
			for _, name := range m.Names {
				if name.IsExported() {
					sig := ""
					if ft, ok := m.Type.(*ast.FuncType); ok {
						sig = signature(ft)
					}
					lines = append(lines, "type "+s.Name.Name+" interface, method "+name.Name+sig)
				}
			}
		}
		return lines
	default:
		eq := " "
		if s.Assign.IsValid() {
			eq = " = "
		}
		return []string{"type " + s.Name.Name + eq + typeString(s.Type) + dep}
	}
}

// signature renders a function type as "(params) (results)".
func signature(t *ast.FuncType) string {
	var b strings.Builder
	b.WriteString("(")
	b.WriteString(fieldList(t.Params))
	b.WriteString(")")
	if t.Results != nil && len(t.Results.List) > 0 {
		res := fieldList(t.Results)
		if len(t.Results.List) == 1 && len(t.Results.List[0].Names) == 0 {
			b.WriteString(" " + res)
		} else {
			b.WriteString(" (" + res + ")")
		}
	}
	return b.String()
}

// fieldList renders parameters or results, dropping names (the API
// contract is positional) but keeping types.
func fieldList(fl *ast.FieldList) string {
	if fl == nil {
		return ""
	}
	var parts []string
	for _, f := range fl.List {
		t := typeString(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			parts = append(parts, t)
		}
	}
	return strings.Join(parts, ", ")
}

// typeString renders a type expression as compact source text.
func typeString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeString(t.X)
	case *ast.SelectorExpr:
		return typeString(t.X) + "." + t.Sel.Name
	case *ast.ArrayType:
		if t.Len != nil {
			return "[" + exprString(t.Len) + "]" + typeString(t.Elt)
		}
		return "[]" + typeString(t.Elt)
	case *ast.MapType:
		return "map[" + typeString(t.Key) + "]" + typeString(t.Value)
	case *ast.FuncType:
		return "func" + signature(t)
	case *ast.ChanType:
		switch t.Dir {
		case ast.RECV:
			return "<-chan " + typeString(t.Value)
		case ast.SEND:
			return "chan<- " + typeString(t.Value)
		default:
			return "chan " + typeString(t.Value)
		}
	case *ast.Ellipsis:
		return "..." + typeString(t.Elt)
	case *ast.InterfaceType:
		if len(t.Methods.List) == 0 {
			return "interface{}"
		}
		return "interface{...}"
	case *ast.StructType:
		if len(t.Fields.List) == 0 {
			return "struct{}"
		}
		return "struct{...}"
	case *ast.IndexExpr:
		return typeString(t.X) + "[" + typeString(t.Index) + "]"
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// exprString renders a constant expression (array lengths).
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.BasicLit:
		return v.Value
	case *ast.Ident:
		return v.Name
	default:
		return "?"
	}
}

// exportedType reports whether a receiver or embedded type name is
// exported (dereferencing pointers and qualified names).
func exportedType(name string) bool {
	name = strings.TrimPrefix(name, "*")
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	return ast.IsExported(name)
}

// deprecated reports whether a doc comment carries a "Deprecated:"
// marker (the convention godoc and linters recognize).
func deprecated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, "Deprecated:") {
			return true
		}
	}
	return false
}

// firstDoc returns the spec's own doc when present, else the block's.
func firstDoc(blockDoc, specDoc *ast.CommentGroup) *ast.CommentGroup {
	if specDoc != nil {
		return specDoc
	}
	return blockDoc
}
