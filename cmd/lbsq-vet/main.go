// Command lbsq-vet is the project's vet multichecker: it bundles the
// lbsq-specific analyzers and speaks the `go vet -vettool=` driver
// protocol, so the whole module is checked with
//
//	go build -o bin/lbsq-vet ./cmd/lbsq-vet
//	go vet -vettool=$PWD/bin/lbsq-vet ./...
//
// or simply `make vet`. Individual analyzers can be disabled with
// -NAME=false (e.g. -floatcmp=false). Findings are suppressed per line
// with //lbsq:nocheck NAME comments; see internal/analysis.
package main

import (
	"lbsq/internal/analysis"
	"lbsq/internal/analysis/ctxflow"
	"lbsq/internal/analysis/droppederr"
	"lbsq/internal/analysis/floatcmp"
	"lbsq/internal/analysis/obslabel"
)

func main() {
	analysis.Main("lbsq-vet",
		floatcmp.Analyzer,
		droppederr.Analyzer,
		ctxflow.Analyzer,
		obslabel.Analyzer,
	)
}
