// Command lbsq-vet is the project's vet multichecker: it bundles the
// lbsq-specific analyzers and speaks the `go vet -vettool=` driver
// protocol, so the whole module is checked with
//
//	go build -o bin/lbsq-vet ./cmd/lbsq-vet
//	go vet -vettool=$PWD/bin/lbsq-vet ./...
//
// or simply `make vet`. Individual analyzers can be disabled with
// -NAME=false (e.g. -floatcmp=false). Findings are suppressed per line
// with //lbsq:nocheck NAME comments — audited for staleness by the
// nocheckaudit analyzer — and lockscope has its own //lbsq:allowblock
// escape hatch. See docs/ANALYZERS.md for the full directive
// reference.
//
// lockscope, lockorder, and hotpath exchange cross-package facts
// through the vetx files the go command schedules for dependency
// units; see internal/analysis/unitchecker.go.
package main

import (
	"lbsq/internal/analysis"
	"lbsq/internal/analysis/ctxflow"
	"lbsq/internal/analysis/droppederr"
	"lbsq/internal/analysis/floatcmp"
	"lbsq/internal/analysis/hotpath"
	"lbsq/internal/analysis/lockorder"
	"lbsq/internal/analysis/lockscope"
	"lbsq/internal/analysis/nocheckaudit"
	"lbsq/internal/analysis/obslabel"
)

func main() {
	analysis.Main("lbsq-vet",
		floatcmp.Analyzer,
		droppederr.Analyzer,
		ctxflow.Analyzer,
		obslabel.Analyzer,
		lockscope.Analyzer,
		lockorder.Analyzer,
		hotpath.Analyzer,
		nocheckaudit.Analyzer,
	)
}
