// Command datagen generates the evaluation datasets (uniform, GR-like,
// NA-like) and writes them in the binary format understood by
// lbsq-server -load and dataset.LoadFile.
//
// Usage:
//
//	datagen -kind gr -out gr.lbsq
//	datagen -kind uniform -n 1000000 -seed 7 -out uni1m.lbsq
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"lbsq/internal/dataset"
)

func main() {
	var (
		kind   = flag.String("kind", "uniform", "dataset kind: uniform | gr | na")
		n      = flag.Int("n", 0, "cardinality (0 = kind default)")
		seed   = flag.Int64("seed", 2003, "random seed")
		out    = flag.String("out", "", "output file (required)")
		format = flag.String("format", "binary", "output format: binary | csv")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(2)
	}

	var d *dataset.Dataset
	switch *kind {
	case "uniform":
		if *n == 0 {
			*n = 100_000
		}
		d = dataset.Uniform(*n, *seed)
	case "gr":
		if *n == 0 {
			*n = dataset.GRCardinality
		}
		d = dataset.GRLike(*n, *seed)
	case "na":
		if *n == 0 {
			*n = dataset.NACardinality
		}
		d = dataset.NALike(*n, *seed)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	switch *format {
	case "binary":
		if err := dataset.SaveFile(*out, d); err != nil {
			log.Fatalf("datagen: %v", err)
		}
	case "csv":
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("datagen: %v", err)
		}
		if err := dataset.SaveCSV(f, d); err != nil {
			log.Fatalf("datagen: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("datagen: %v", err)
		}
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown format %q\n", *format)
		os.Exit(2)
	}
	fmt.Printf("wrote %s: %d points (%s) in %v\n", *out, len(d.Items), d.Name, d.Universe)
}
