// Command lbsq-viz renders a location-based query and its validity
// region as SVG — live regenerations of the paper's figures from real
// data structures.
//
// Usage:
//
//	lbsq-viz -query nn -k 1 -x 0.4 -y 0.6 -out nn.svg
//	lbsq-viz -query window -qs 0.001 -out window.svg
//	lbsq-viz -query range -radius 0.03 -out range.svg
//	lbsq-viz -dataset gr -query nn -out gr.svg
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"lbsq"
	"lbsq/internal/geom"
	"lbsq/internal/viz"
)

func main() {
	var (
		kind   = flag.String("dataset", "uniform", "dataset: uniform | gr | na")
		n      = flag.Int("n", 20_000, "synthetic cardinality")
		seed   = flag.Int64("seed", 2003, "random seed")
		query  = flag.String("query", "nn", "query type: nn | window | range")
		k      = flag.Int("k", 1, "neighbors for nn queries")
		qs     = flag.Float64("qs", 0.001, "window area as a fraction of the universe")
		radius = flag.Float64("radius", 0.03, "range radius as a fraction of universe width")
		qx     = flag.Float64("x", 0.5, "query x as a fraction of universe width")
		qy     = flag.Float64("y", 0.5, "query y as a fraction of universe height")
		width  = flag.Int("width", 900, "SVG pixel width")
		out    = flag.String("out", "query.svg", "output file")
	)
	flag.Parse()

	var items []lbsq.Item
	var uni lbsq.Rect
	switch *kind {
	case "uniform":
		items, uni = lbsq.UniformDataset(*n, *seed)
	case "gr":
		items, uni = lbsq.GRLikeDataset(*n, *seed)
	case "na":
		items, uni = lbsq.NALikeDataset(*n, *seed)
	default:
		fmt.Fprintf(os.Stderr, "lbsq-viz: unknown dataset %q\n", *kind)
		os.Exit(2)
	}
	db, err := lbsq.Open(items, uni, nil)
	if err != nil {
		log.Fatalf("lbsq-viz: %v", err)
	}
	q := lbsq.Pt(uni.MinX+*qx*uni.Width(), uni.MinY+*qy*uni.Height())

	// Zoomed scene around the query; extent adapts to the query type.
	var view lbsq.Rect
	scene := func(extent float64) *viz.Scene {
		view = geom.RectCenteredAt(q, extent*uni.Width(), extent*uni.Width())
		view = view.Intersect(uni)
		return viz.NewScene(view, *width)
	}

	var sc *viz.Scene
	switch *query {
	case "nn":
		v, _, err := db.NN(context.Background(), q, *k)
		if err != nil {
			log.Fatalf("lbsq-viz: %v", err)
		}
		bb := v.Region.Bounds()
		sc = scene(3 * math.Max(bb.Width(), bb.Height()) / uni.Width())
		sc.Polygon(v.Region, "fill:#cfe8ff;stroke:#1f6fb2;stroke-width:2;fill-opacity:0.7")
		drawData(sc, items, view)
		for _, pr := range v.Pairs {
			sc.Segment(pr.Member.P, pr.Obj.P, "stroke:#bbbbbb;stroke-width:1;stroke-dasharray:4 3")
		}
		for _, it := range v.Influence {
			sc.Marker(it.P, 5, "fill:none;stroke:#d62728;stroke-width:2")
		}
		for _, nb := range v.Neighbors {
			sc.Marker(nb.Item.P, 5, "fill:#2ca02c")
		}
		sc.Marker(q, 5, "fill:#1f6fb2")
		sc.Text(q.Add(lbsq.Pt(view.Width()/80, view.Width()/80)), "q", "font-size:16px;fill:#1f6fb2")
	case "window":
		side := math.Sqrt(*qs) * uni.Width()
		wv, _, err := db.WindowAt(context.Background(), q, side, side)
		if err != nil {
			log.Fatal(err)
		}
		ext := 3 * math.Max(wv.InnerRect.Width(), side) / uni.Width()
		sc = scene(ext)
		sc.RectRegion(wv.Region,
			"fill:#cfe8ff;stroke:#1f6fb2;stroke-width:2;fill-opacity:0.7",
			"fill:#ffd4d4;stroke:#d62728;stroke-width:1;fill-opacity:0.8")
		sc.Rect(geom.RectCenteredAt(q, side, side), "fill:none;stroke:#2ca02c;stroke-width:2;stroke-dasharray:6 4")
		drawData(sc, items, view)
		for _, it := range wv.InnerInfluence {
			sc.Marker(it.P, 5, "fill:#2ca02c")
		}
		for _, it := range wv.OuterInfluence {
			sc.Marker(it.P, 5, "fill:none;stroke:#d62728;stroke-width:2")
		}
		sc.Marker(q, 5, "fill:#1f6fb2")
	case "range":
		r := *radius * uni.Width()
		rv, _, err := db.Range(context.Background(), q, r)
		if err != nil {
			log.Fatal(err)
		}
		sc = scene(6 * *radius)
		for _, d := range rv.Inner.Disks {
			sc.Circle(d.C, d.R, "fill:#cfe8ff;stroke:none;fill-opacity:0.25")
		}
		sc.Circle(q, r, "fill:none;stroke:#2ca02c;stroke-width:2;stroke-dasharray:6 4")
		drawData(sc, items, view)
		for _, it := range rv.InnerInfluence {
			sc.Marker(it.P, 5, "fill:#2ca02c")
		}
		for _, it := range rv.OuterInfluence {
			sc.Circle(it.P, r, "fill:#ffd4d4;stroke:#d62728;stroke-width:1;fill-opacity:0.3")
			sc.Marker(it.P, 4, "fill:none;stroke:#d62728;stroke-width:2")
		}
		sc.Marker(q, 5, "fill:#1f6fb2")
	default:
		fmt.Fprintf(os.Stderr, "lbsq-viz: unknown query %q\n", *query)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("lbsq-viz: %v", err)
	}
	if err := sc.WriteSVG(f); err != nil {
		log.Fatalf("lbsq-viz: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("lbsq-viz: %v", err)
	}
	fmt.Printf("wrote %s (%s query at %v)\n", *out, *query, q)
}

// drawData plots the dataset points inside the viewport.
func drawData(sc *viz.Scene, items []lbsq.Item, view lbsq.Rect) {
	var pts []geom.Point
	for _, it := range items {
		if view.Contains(it.P) {
			pts = append(pts, it.P)
		}
	}
	sc.Points(pts, 2, "fill:#777777")
}
