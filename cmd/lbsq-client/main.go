// Command lbsq-client simulates a mobile client against an lbsq-server:
// it follows a random-waypoint trajectory, asks for its nearest
// neighbor at every position update, and uses cached validity regions
// to decide locally whether the previous answer still holds — the
// paper's protocol end to end over a real network connection.
//
// Usage:
//
//	lbsq-client -server http://localhost:8080 -steps 1000 -k 1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"

	"lbsq"
	"lbsq/internal/trajectory"
)

func main() {
	var (
		server = flag.String("server", "http://localhost:8080", "lbsq-server base URL")
		steps  = flag.Int("steps", 1000, "trajectory length (position updates)")
		k      = flag.Int("k", 1, "number of nearest neighbors")
		seed   = flag.Int64("seed", 1, "trajectory seed")
		stepF  = flag.Float64("step", 0.0005, "step length as a fraction of the universe width")
	)
	flag.Parse()

	rc := lbsq.NewRemoteClient(*server)
	count, universe, err := rc.Info(context.Background())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("server holds %d points in %v\n", count, universe)

	path := trajectory.RandomWaypoint(universe, universe.Width()**stepF, *steps, *seed)

	var cached *lbsq.NNValidity
	queries, hits, bytes := 0, 0, 0
	for _, p := range path {
		if cached != nil && cached.Valid(p) {
			hits++
			continue
		}
		v, err := rc.NN(context.Background(), p, *k)
		if err != nil {
			fatal(err)
		}
		cached = v
		queries++
		bytes += len(lbsq.EncodeNN(v))
	}
	fmt.Printf("position updates : %d\n", len(path))
	fmt.Printf("server queries   : %d (%.2f%% of updates)\n",
		queries, 100*float64(queries)/float64(len(path)))
	fmt.Printf("cache hits       : %d\n", hits)
	fmt.Printf("bytes received   : %d (%.1f per update)\n",
		bytes, float64(bytes)/float64(len(path)))
	if cached != nil {
		region := cached.RegionPolygon(universe)
		fmt.Printf("last answer      : %d neighbors, %d influence objects, region area %.3g\n",
			len(cached.Neighbors), len(cached.Influence), region.Area())
	}
}

// fatal exits with the error; server-side failures are unpacked from
// the typed RemoteError so the envelope code is visible.
func fatal(err error) {
	var re *lbsq.RemoteError
	if errors.As(err, &re) {
		log.Fatalf("lbsq-client: server error (status %d, code %d): %s", re.Status, re.Code, re.Message)
	}
	log.Fatalf("lbsq-client: %v", err)
}
