// Command lbsq-server serves a location-based spatial query processor
// over HTTP: the server half of the paper's mobile client/server
// architecture. Clients receive compact binary responses containing the
// query result plus its validity region (influence objects).
//
// Usage:
//
//	lbsq-server -n 100000 -seed 7 -addr :8080       # synthetic uniform data
//	lbsq-server -dataset gr                          # GR-like dataset
//	lbsq-server -load points.lbsq                    # dataset file (see datagen)
//
// Endpoints: /nn?x=&y=&k=   /window?x=&y=&qx=&qy=   /info, each also
// mounted under /v1/ with JSON error envelopes, plus POST /v1/batch.
// -cache enables the server-side validity-region cache. Every unsharded
// server also answers the shard RPC at POST /v1/shard, so it can serve
// as a data node of a distributed cluster.
//
// Cluster mode: -cluster runs the process as a distributed coordinator
// over remote data nodes instead of serving data itself —
//
//	lbsq-server -addr :8081 -n 0 &                  # three data nodes
//	lbsq-server -addr :8082 -n 0 &
//	lbsq-server -addr :8083 -n 0 &
//	lbsq-server -addr :8080 \
//	  -cluster http://localhost:8081,http://localhost:8082,http://localhost:8083 \
//	  -seed-cluster -n 100000                       # coordinator, seeds the nodes
//
// with -replicas grouping consecutive nodes into replica sets,
// -placement choosing hash or spatial partition placement, and
// -hedge-after bounding the tail latency of reads. A running data node
// joins an existing cluster as an extra replica with
// -join http://coordinator:8080 -advertise http://me:8084.
//
// Durability: -data-dir makes the server crash-safe — every Insert and
// Delete is write-ahead logged before it is acknowledged, the store is
// checkpointed every -checkpoint-every writes (POST /v1/admin/checkpoint
// forces one), and restarting with the same -data-dir recovers the
// acknowledged state instead of regenerating the dataset. -sync picks
// the fsync policy (always | os).
//
// Observability: -metrics (default on) exposes Prometheus text metrics
// at /metrics; -pprof additionally mounts net/http/pprof under
// /debug/pprof/ for live profiling.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lbsq"
	"lbsq/internal/dataset"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		n         = flag.Int("n", 100_000, "synthetic dataset cardinality")
		kind      = flag.String("dataset", "uniform", "synthetic dataset: uniform | gr | na")
		seed      = flag.Int64("seed", 2003, "random seed")
		load      = flag.String("load", "", "load a dataset file instead of generating")
		buf       = flag.Float64("buffer", 0.10, "LRU buffer fraction of tree size (0 disables)")
		shards    = flag.Int("shards", 1, "number of spatial shards (>1 enables scatter-gather)")
		strategy  = flag.String("shard-strategy", "grid", "shard partitioning: grid | kdmedian")
		workers   = flag.Int("shard-workers", 0, "scatter-gather worker pool size (0 = GOMAXPROCS)")
		cache     = flag.Int("cache", 0, "validity-region cache capacity in regions (0 disables)")
		layout    = flag.String("layout", "", "index layout: pointer | arena (arena is read-optimized, incompatible with -shards > 1)")
		sessStrat = flag.String("session-strategy", "", "NN session strategy: tpknn | insq (insq repairs an influential neighbor set instead of re-querying; incompatible with -shards > 1)")
		metrics   = flag.Bool("metrics", true, "expose Prometheus metrics at /metrics")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")

		dataDir    = flag.String("data-dir", "", "durable data directory: WAL every write, recover on restart (empty = in-memory)")
		syncMode   = flag.String("sync", "always", "WAL fsync policy with -data-dir: always | os")
		checkEvery = flag.Int("checkpoint-every", 10_000, "auto-checkpoint after this many logged writes (0 = manual only)")

		cluster    = flag.String("cluster", "", "comma-separated data node URLs: run as a distributed coordinator")
		replicas   = flag.Int("replicas", 1, "replicas per group (consecutive -cluster nodes form a group)")
		partitions = flag.Int("partitions", 0, "ring partitions (0 = one per group)")
		placement  = flag.String("placement", "hash", "partition placement: hash | spatial")
		hedgeAfter = flag.Duration("hedge-after", 0, "launch a backup replica read after this delay (0 disables)")
		opTimeout  = flag.Duration("op-timeout", 5*time.Second, "per-attempt shard RPC timeout")
		retries    = flag.Int("retries", 1, "extra full-group retry rounds after total failure")
		seedDist   = flag.Bool("seed-cluster", false, "seed the cluster's data nodes with the generated/loaded dataset")
		join       = flag.String("join", "", "coordinator URL: join its cluster as a new replica (data node mode)")
		advertise  = flag.String("advertise", "", "externally reachable base URL of this node (required with -join)")
	)
	flag.Parse()

	if *cluster != "" {
		runCoordinator(coordinatorConfig{
			addr: *addr, nodes: strings.Split(*cluster, ","),
			replicas: *replicas, partitions: *partitions, placement: *placement,
			hedgeAfter: *hedgeAfter, opTimeout: *opTimeout, retries: *retries,
			seed: *seedDist, n: *n, kind: *kind, rngSeed: *seed, load: *load,
			pprofOn: *pprofOn,
		})
		return
	}

	st, err := lbsq.ParseShardStrategy(*strategy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbsq-server: %v\n", err)
		os.Exit(2)
	}

	sync, err := lbsq.ParseSyncMode(*syncMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbsq-server: %v\n", err)
		os.Exit(2)
	}

	var db *lbsq.DB
	if *dataDir != "" && lbsq.StoreExists(*dataDir) {
		// An existing store wins over the dataset flags: recover the
		// acknowledged state instead of regenerating.
		db, err = lbsq.OpenDir(*dataDir, &lbsq.Options{
			BufferFraction:  *buf,
			CacheSize:       *cache,
			SyncMode:        sync,
			CheckpointEvery: *checkEvery,
			Layout:          *layout,
			SessionStrategy: *sessStrat,
		})
		if err != nil {
			log.Fatalf("lbsq-server: %v", err)
		}
		stats, _ := db.StorageStats()
		log.Printf("recovered %d points from %s (generation %d, %d WAL records replayed) on %s",
			db.Len(), *dataDir, stats.Generation, stats.RecoveredRecords, *addr)
	} else {
		items, universe, name := loadDataset(*load, *kind, *n, *seed)
		db, err = lbsq.Open(items, universe, &lbsq.Options{
			BufferFraction:  *buf,
			Shards:          *shards,
			ShardStrategy:   st,
			ShardWorkers:    *workers,
			CacheSize:       *cache,
			DataDir:         *dataDir,
			SyncMode:        sync,
			CheckpointEvery: *checkEvery,
			Layout:          *layout,
			SessionStrategy: *sessStrat,
		})
		if err != nil {
			log.Fatalf("lbsq-server: %v", err)
		}
		switch {
		case db.Sharded():
			log.Printf("serving %d points (%s) in %v on %s (%d %s shards)",
				db.Len(), name, universe, *addr, db.NumShards(), st)
		case *dataDir != "":
			log.Printf("serving %d points (%s) in %v on %s (durable in %s, sync=%s)",
				db.Len(), name, universe, *addr, *dataDir, sync)
		case *layout == lbsq.LayoutArena:
			log.Printf("serving %d points (%s) in %v on %s (arena layout)",
				db.Len(), name, universe, *addr)
		default:
			log.Printf("serving %d points (%s) in %v on %s", db.Len(), name, universe, *addr)
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/", db.Handler())
	if !*metrics {
		// The DB handler serves /metrics by default; mask it when the
		// operator opts out.
		mux.HandleFunc("/metrics", http.NotFound)
	} else {
		log.Printf("metrics at http://%s/metrics", displayAddr(*addr))
	}
	mountPprof(mux, *pprofOn, *addr)
	if *join != "" {
		if *advertise == "" {
			log.Fatal("lbsq-server: -join requires -advertise (this node's reachable URL)")
		}
		go joinCluster(*join, *advertise)
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests and seal
	// the durable store so no acknowledged write is lost on shutdown.
	srv := &http.Server{Addr: *addr, Handler: mux}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	select {
	case err := <-done:
		log.Fatalf("lbsq-server: %v", err)
	case sig := <-stop:
		log.Printf("lbsq-server: %v: shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("lbsq-server: shutdown: %v", err)
		}
		cancel()
		if err := db.Close(); err != nil {
			log.Fatalf("lbsq-server: closing store: %v", err)
		}
	}
}

// loadDataset resolves the -load / -dataset / -n flags into items.
func loadDataset(load, kind string, n int, seed int64) ([]lbsq.Item, lbsq.Rect, string) {
	if load != "" {
		var d *dataset.Dataset
		var err error
		if strings.HasSuffix(load, ".csv") {
			f, ferr := os.Open(load)
			if ferr != nil {
				log.Fatalf("lbsq-server: %v", ferr)
			}
			d, err = dataset.LoadCSV(f, load, lbsq.Rect{})
			f.Close()
		} else {
			d, err = dataset.LoadFile(load)
		}
		if err != nil {
			log.Fatalf("lbsq-server: %v", err)
		}
		return d.Items, d.Universe, d.Name
	}
	var items []lbsq.Item
	var universe lbsq.Rect
	switch kind {
	case "uniform":
		items, universe = lbsq.UniformDataset(n, seed)
	case "gr":
		items, universe = lbsq.GRLikeDataset(n, seed)
	case "na":
		items, universe = lbsq.NALikeDataset(n, seed)
	default:
		fmt.Fprintf(os.Stderr, "lbsq-server: unknown dataset %q\n", kind)
		os.Exit(2)
	}
	return items, universe, kind
}

type coordinatorConfig struct {
	addr       string
	nodes      []string
	replicas   int
	partitions int
	placement  string
	hedgeAfter time.Duration
	opTimeout  time.Duration
	retries    int
	seed       bool
	n          int
	kind       string
	rngSeed    int64
	load       string
	pprofOn    bool
}

// runCoordinator connects to the data nodes and serves the cluster
// front-end (control plane plus read-only binary query endpoints).
func runCoordinator(cfg coordinatorConfig) {
	pl, err := lbsq.ParseDistPlacement(cfg.placement)
	if err != nil {
		log.Fatalf("lbsq-server: %v", err)
	}
	for i := range cfg.nodes {
		cfg.nodes[i] = strings.TrimSpace(cfg.nodes[i])
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// The cluster universe: from the dataset when seeding, otherwise
	// from the first data node (they must all agree anyway).
	var items []lbsq.Item
	var universe lbsq.Rect
	if cfg.seed {
		items, universe, _ = loadDataset(cfg.load, cfg.kind, cfg.n, cfg.rngSeed)
	} else {
		_, u, err := lbsq.NewRemoteClient(cfg.nodes[0]).Info(ctx)
		if err != nil {
			log.Fatalf("lbsq-server: fetching universe from %s: %v", cfg.nodes[0], err)
		}
		universe = u
	}

	d, err := lbsq.OpenDistributed(ctx, lbsq.DistOptions{
		Nodes:      cfg.nodes,
		Replicas:   cfg.replicas,
		Universe:   universe,
		Partitions: cfg.partitions,
		Placement:  pl,
		HedgeAfter: cfg.hedgeAfter,
		OpTimeout:  cfg.opTimeout,
		Retries:    cfg.retries,
	})
	if err != nil {
		log.Fatalf("lbsq-server: %v", err)
	}
	if cfg.seed {
		if err := d.Seed(ctx, items); err != nil {
			log.Fatalf("lbsq-server: seeding cluster: %v", err)
		}
		log.Printf("seeded %d points across %d nodes", len(items), len(cfg.nodes))
	}
	log.Printf("coordinating %d nodes (%d groups × %d replicas, %s placement) in %v on %s",
		len(cfg.nodes), d.Coordinator().NumGroups(), cfg.replicas, pl, universe, cfg.addr)

	mux := http.NewServeMux()
	mux.Handle("/", d.Handler())
	mountPprof(mux, cfg.pprofOn, cfg.addr)
	log.Fatal(http.ListenAndServe(cfg.addr, mux))
}

// joinCluster asks a running coordinator to add this node as a replica.
// Retried briefly so a node can be started before its own listener is
// accepting (the coordinator verifies reachability during the join).
func joinCluster(coordinator, advertise string) {
	target := strings.TrimRight(coordinator, "/") +
		"/v1/cluster/join?addr=" + url.QueryEscape(advertise)
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		time.Sleep(time.Duration(attempt) * 500 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, nil)
		if err != nil {
			cancel()
			log.Fatalf("lbsq-server: join: %v", err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil && resp.StatusCode == http.StatusOK {
			resp.Body.Close()
			cancel()
			log.Printf("joined cluster at %s as %s", coordinator, advertise)
			return
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("join returned %s", resp.Status)
			resp.Body.Close()
		}
		cancel()
	}
	log.Printf("lbsq-server: join failed: %v", lastErr)
}

// mountPprof mounts net/http/pprof when enabled.
func mountPprof(mux *http.ServeMux, on bool, addr string) {
	if !on {
		return
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("pprof at http://%s/debug/pprof/", displayAddr(addr))
}

// displayAddr renders a listen address as a dialable host:port: a
// bare ":8080" gets a localhost host, anything else is shown as-is.
func displayAddr(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "localhost" + addr
	}
	return addr
}
