// Command lbsq-server serves a location-based spatial query processor
// over HTTP: the server half of the paper's mobile client/server
// architecture. Clients receive compact binary responses containing the
// query result plus its validity region (influence objects).
//
// Usage:
//
//	lbsq-server -n 100000 -seed 7 -addr :8080       # synthetic uniform data
//	lbsq-server -dataset gr                          # GR-like dataset
//	lbsq-server -load points.lbsq                    # dataset file (see datagen)
//
// Endpoints: /nn?x=&y=&k=   /window?x=&y=&qx=&qy=   /info, each also
// mounted under /v1/ with JSON error envelopes, plus POST /v1/batch.
// -cache enables the server-side validity-region cache.
//
// Observability: -metrics (default on) exposes Prometheus text metrics
// at /metrics; -pprof additionally mounts net/http/pprof under
// /debug/pprof/ for live profiling.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"

	"lbsq"
	"lbsq/internal/dataset"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		n        = flag.Int("n", 100_000, "synthetic dataset cardinality")
		kind     = flag.String("dataset", "uniform", "synthetic dataset: uniform | gr | na")
		seed     = flag.Int64("seed", 2003, "random seed")
		load     = flag.String("load", "", "load a dataset file instead of generating")
		buf      = flag.Float64("buffer", 0.10, "LRU buffer fraction of tree size (0 disables)")
		shards   = flag.Int("shards", 1, "number of spatial shards (>1 enables scatter-gather)")
		strategy = flag.String("shard-strategy", "grid", "shard partitioning: grid | kdmedian")
		workers  = flag.Int("shard-workers", 0, "scatter-gather worker pool size (0 = GOMAXPROCS)")
		cache    = flag.Int("cache", 0, "validity-region cache capacity in regions (0 disables)")
		metrics  = flag.Bool("metrics", true, "expose Prometheus metrics at /metrics")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	st, err := lbsq.ParseShardStrategy(*strategy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbsq-server: %v\n", err)
		os.Exit(2)
	}

	var items []lbsq.Item
	var universe lbsq.Rect
	var name string
	if *load != "" {
		var d *dataset.Dataset
		var err error
		if strings.HasSuffix(*load, ".csv") {
			f, ferr := os.Open(*load)
			if ferr != nil {
				log.Fatalf("lbsq-server: %v", ferr)
			}
			d, err = dataset.LoadCSV(f, *load, lbsq.Rect{})
			f.Close()
		} else {
			d, err = dataset.LoadFile(*load)
		}
		if err != nil {
			log.Fatalf("lbsq-server: %v", err)
		}
		items, universe, name = d.Items, d.Universe, d.Name
	} else {
		switch *kind {
		case "uniform":
			items, universe = lbsq.UniformDataset(*n, *seed)
		case "gr":
			items, universe = lbsq.GRLikeDataset(*n, *seed)
		case "na":
			items, universe = lbsq.NALikeDataset(*n, *seed)
		default:
			fmt.Fprintf(os.Stderr, "lbsq-server: unknown dataset %q\n", *kind)
			os.Exit(2)
		}
		name = *kind
	}

	db, err := lbsq.Open(items, universe, &lbsq.Options{
		BufferFraction: *buf,
		Shards:         *shards,
		ShardStrategy:  st,
		ShardWorkers:   *workers,
		CacheSize:      *cache,
	})
	if err != nil {
		log.Fatalf("lbsq-server: %v", err)
	}
	if db.Sharded() {
		log.Printf("serving %d points (%s) in %v on %s (%d %s shards)",
			db.Len(), name, universe, *addr, db.NumShards(), st)
	} else {
		log.Printf("serving %d points (%s) in %v on %s", db.Len(), name, universe, *addr)
	}

	mux := http.NewServeMux()
	mux.Handle("/", db.Handler())
	if !*metrics {
		// The DB handler serves /metrics by default; mask it when the
		// operator opts out.
		mux.HandleFunc("/metrics", http.NotFound)
	} else {
		log.Printf("metrics at http://localhost%s/metrics", *addr)
	}
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("pprof at http://localhost%s/debug/pprof/", *addr)
	}
	log.Fatal(http.ListenAndServe(*addr, mux))
}
