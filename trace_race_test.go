package lbsq

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestTraceHookRace drives concurrent queries of every kind on a
// sharded DB while another goroutine installs, swaps, and removes
// trace hooks. SetTraceHook documents that it is safe to call
// concurrently with queries; this test is the claim's race-detector
// witness (the CI race gate runs it under go test -race).
func TestTraceHookRace(t *testing.T) {
	items, uni := UniformDataset(5000, 8)
	db, err := Open(items, uni, &Options{Shards: 4, ShardStrategy: ShardGrid})
	if err != nil {
		t.Fatal(err)
	}

	var fired atomic.Int64
	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				db.SetTraceHook(func(tr QueryTrace) {
					fired.Add(1)
					if tr.Op == "" || !tr.Sharded {
						t.Errorf("malformed trace: %+v", tr)
					}
				})
			case 1:
				db.SetTraceHook(func(QueryTrace) { fired.Add(1) })
			default:
				db.SetTraceHook(nil)
			}
		}
	}()

	var queriers sync.WaitGroup
	for w := 0; w < 4; w++ {
		queriers.Add(1)
		go func(seed int64) {
			defer queriers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 60; i++ {
				p := Pt(rng.Float64(), rng.Float64())
				var err error
				switch i % 4 {
				case 0:
					_, _, err = db.NN(context.Background(), p, 1+rng.Intn(4))
				case 1:
					_, _, err = db.WindowAt(context.Background(), p, 0.04, 0.04)
				case 2:
					_, _, err = db.Range(context.Background(), p, 0.02)
				default:
					_, err = db.KNearest(context.Background(), p, 2)
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	queriers.Wait()
	close(stop)
	swapper.Wait()

	// Deterministic tail: with a hook installed and no concurrent
	// removal, one query must fire it exactly once more.
	before := fired.Load()
	db.SetTraceHook(func(QueryTrace) { fired.Add(1) })
	if _, _, err := db.NN(context.Background(), Pt(0.5, 0.5), 1); err != nil {
		t.Fatal(err)
	}
	db.SetTraceHook(nil)
	if fired.Load() != before+1 {
		t.Errorf("trace hook fired %d times after install, want 1", fired.Load()-before)
	}
}
