package lbsq

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHandlerRejectsNonFiniteParams: NaN and Inf coordinates must be a
// 400, not a query — non-finite values poison every distance comparison
// downstream.
func TestHandlerRejectsNonFiniteParams(t *testing.T) {
	items, uni := UniformDataset(500, 1)
	db, err := Open(items, uni, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()

	for _, tc := range []struct {
		name string
		path string
	}{
		{"nn-nan-x", "/nn?x=NaN&y=0.5&k=1"},
		{"nn-inf-y", "/nn?x=0.5&y=%2BInf&k=1"},
		{"nn-neg-inf", "/nn?x=-Inf&y=0.5&k=1"},
		{"window-nan-focus", "/window?x=nan&y=0.5&qx=0.1&qy=0.1"},
		{"window-inf-extent", "/window?x=0.5&y=0.5&qx=Inf&qy=0.1"},
		{"range-nan-radius", "/range?x=0.5&y=0.5&r=NaN"},
		{"range-inf-center", "/range?x=Inf&y=0.5&r=0.1"},
		{"route-nan-endpoint", "/route?x1=NaN&y1=0&x2=1&y2=1"},
		{"route-inf-endpoint", "/route?x1=0&y1=0&x2=Inf&y2=1"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Get(srv.URL + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("GET %s: status %d, want 400", tc.path, resp.StatusCode)
			}
		})
	}

	// Finite queries still work.
	resp, err := http.Get(srv.URL + "/nn?x=0.5&y=0.5&k=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("finite query: status %d, want 200", resp.StatusCode)
	}
}

// TestConcurrentDeltaSessions runs many delta sessions in parallel
// (run with -race): each session's incremental responses must decode to
// the same answers the local DB gives, and sessions must not corrupt
// each other's received-item sets.
func TestConcurrentDeltaSessions(t *testing.T) {
	items, uni := UniformDataset(4000, 2)
	db, err := Open(items, uni, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()

	const sessions = 8
	const steps = 30
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			rc := &RemoteClient{Base: srv.URL, Session: fmt.Sprintf("sess-%d", s)}
			// Each session walks its own diagonal, with overlapping
			// positions across sessions so delta states would collide if
			// the store mixed sessions up.
			for i := 0; i < steps; i++ {
				q := Pt(0.1+0.8*float64(i)/steps, 0.1+0.8*float64((i+s)%steps)/steps)
				k := 1 + (i+s)%5
				got, err := rc.NN(context.Background(), q, k)
				if err != nil {
					errs <- err
					return
				}
				want, _, err := db.NN(context.Background(), q, k)
				if err != nil {
					errs <- err
					return
				}
				if len(got.Neighbors) != len(want.Neighbors) {
					errs <- fmt.Errorf("session %d: %d neighbors, want %d", s, len(got.Neighbors), len(want.Neighbors))
					return
				}
				for j := range want.Neighbors {
					if got.Neighbors[j].Item != want.Neighbors[j].Item {
						errs <- fmt.Errorf("session %d at %v: neighbor %d is %+v, want %+v",
							s, q, j, got.Neighbors[j].Item, want.Neighbors[j].Item)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRemoteClientDefaultTimeout: the zero-value client must not hang
// forever on a dead server — it gets a 10-second default timeout
// (http.DefaultClient has none), and an explicit HTTP client still
// wins.
func TestRemoteClientDefaultTimeout(t *testing.T) {
	c := &RemoteClient{Base: "http://example.invalid"}
	hc := c.httpClient()
	if hc == http.DefaultClient {
		t.Fatal("zero-value RemoteClient uses http.DefaultClient (no timeout)")
	}
	if hc.Timeout != 10*time.Second {
		t.Fatalf("default timeout = %v, want 10s", hc.Timeout)
	}
	custom := &http.Client{Timeout: time.Minute}
	if (&RemoteClient{HTTP: custom}).httpClient() != custom {
		t.Fatal("explicit HTTP client not honored")
	}
}

// TestInfoReportsShards: /info exposes the shard count and per-shard
// stats for a sharded DB.
func TestInfoReportsShards(t *testing.T) {
	items, uni := UniformDataset(2000, 3)
	db, err := OpenSharded(items, uni, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()

	rc := &RemoteClient{Base: srv.URL}
	count, gotUni, err := rc.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if count != 2000 || gotUni != uni {
		t.Fatalf("Info = (%d, %v), want (2000, %v)", count, gotUni, uni)
	}
	body, err := rc.get(context.Background(), "/info")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"shards":4`, `"shard_stats"`, `"node_accesses"`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/info response missing %s: %s", want, body)
		}
	}
}
