package lbsq

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"lbsq/internal/geom"
	"lbsq/internal/rtree"
)

// Versioned (v1) wire protocol additions: the JSON batch endpoint and
// the RemoteClient configuration surface. Single-query endpoints keep
// the compact binary encodings (see http.go); the batch endpoint wraps
// those same binary payloads in a JSON frame, so one round trip can
// carry many heterogeneous answers without inventing a second encoding
// of validity regions.

// maxWireBatch bounds one POST /v1/batch request: a larger batch is a
// client error, not a memory-exhaustion vector.
const maxWireBatch = 4096

// batchWireOps maps the wire op names onto batch ops (and back).
var batchWireOps = map[string]BatchOp{
	"nn":     BatchNN,
	"knn":    BatchKNN,
	"window": BatchWindow,
	"range":  BatchRange,
	"count":  BatchCount,
	"search": BatchSearch,
}

// batchWireName returns the wire name of op ("" when unknown).
func batchWireName(op BatchOp) string {
	for name, o := range batchWireOps {
		if o == op {
			return name
		}
	}
	return ""
}

// batchWireReq is one request of a POST /v1/batch body:
//
//	{"requests": [
//	  {"op": "nn", "x": 0.4, "y": 0.6, "k": 1},
//	  {"op": "window", "window": [0.1, 0.1, 0.2, 0.2]},
//	  {"op": "range", "x": 0.5, "y": 0.5, "radius": 0.05},
//	  ...
//	]}
type batchWireReq struct {
	Op     string      `json:"op"`
	X      float64     `json:"x,omitempty"`
	Y      float64     `json:"y,omitempty"`
	K      int         `json:"k,omitempty"`
	Window *[4]float64 `json:"window,omitempty"`
	Radius float64     `json:"radius,omitempty"`
}

// batchWireItem is one enumerated item of a knn/search answer.
type batchWireItem struct {
	ID   int64   `json:"id"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	Dist float64 `json:"dist,omitempty"`
}

// batchWireResp is one answer of a POST /v1/batch response. The NN,
// Window and Range payloads are the binary encodings of EncodeNN /
// EncodeWindow / EncodeRange (base64 in JSON); exactly one result field
// is set, or Error carries the per-request failure.
type batchWireResp struct {
	NN        []byte          `json:"nn,omitempty"`
	Neighbors []batchWireItem `json:"neighbors,omitempty"`
	Window    []byte          `json:"window,omitempty"`
	Range     []byte          `json:"range,omitempty"`
	Count     int             `json:"count,omitempty"`
	Items     []batchWireItem `json:"items,omitempty"`
	CacheHit  bool            `json:"cache_hit,omitempty"`
	Coalesced bool            `json:"coalesced,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// toWireRequests converts a wire batch body into executor requests.
func toWireRequests(wire []batchWireReq) ([]BatchRequest, error) {
	reqs := make([]BatchRequest, len(wire))
	for i := range wire {
		wr := &wire[i]
		op, ok := batchWireOps[wr.Op]
		if !ok {
			return nil, fmt.Errorf("lbsq: request %d: unknown op %q", i, wr.Op)
		}
		reqs[i] = BatchRequest{Op: op, Q: Pt(wr.X, wr.Y), K: wr.K, Radius: wr.Radius}
		if wr.Window != nil {
			w := *wr.Window
			reqs[i].W = R(w[0], w[1], w[2], w[3])
		}
	}
	return reqs, nil
}

// fromWireRequests converts executor requests into the wire batch body.
func fromWireRequests(reqs []BatchRequest) ([]batchWireReq, error) {
	wire := make([]batchWireReq, len(reqs))
	for i := range reqs {
		r := &reqs[i]
		name := batchWireName(r.Op)
		if name == "" {
			return nil, fmt.Errorf("lbsq: request %d: unknown batch op %d", i, r.Op)
		}
		wire[i] = batchWireReq{Op: name, X: r.Q.X, Y: r.Q.Y, K: r.K, Radius: r.Radius}
		zero := geom.ExactZero(r.W.MinX) && geom.ExactZero(r.W.MinY) &&
			geom.ExactZero(r.W.MaxX) && geom.ExactZero(r.W.MaxY)
		if !zero {
			wire[i].Window = &[4]float64{r.W.MinX, r.W.MinY, r.W.MaxX, r.W.MaxY}
		}
	}
	return wire, nil
}

// toWireResponses converts batch answers into the wire response body.
func toWireResponses(resps []BatchResponse) []batchWireResp {
	wire := make([]batchWireResp, len(resps))
	for i := range resps {
		b := &resps[i]
		w := &wire[i]
		w.CacheHit, w.Coalesced = b.CacheHit, b.Coalesced
		if b.Err != nil {
			w.Error = b.Err.Error()
			continue
		}
		if b.NN != nil {
			w.NN = EncodeNN(b.NN)
		}
		if b.Window != nil {
			w.Window = EncodeWindow(b.Window)
		}
		if b.Range != nil {
			w.Range = EncodeRange(b.Range)
		}
		w.Count = b.Count
		for _, nb := range b.Neighbors {
			w.Neighbors = append(w.Neighbors,
				batchWireItem{ID: nb.Item.ID, X: nb.Item.P.X, Y: nb.Item.P.Y, Dist: nb.Dist})
		}
		for _, it := range b.Items {
			w.Items = append(w.Items, batchWireItem{ID: it.ID, X: it.P.X, Y: it.P.Y})
		}
	}
	return wire
}

// fromWireResponses decodes the wire response body back into batch
// answers; universe is needed to rebuild window validity regions.
func fromWireResponses(wire []batchWireResp, universe Rect) ([]BatchResponse, error) {
	resps := make([]BatchResponse, len(wire))
	for i := range wire {
		w := &wire[i]
		b := &resps[i]
		b.CacheHit, b.Coalesced = w.CacheHit, w.Coalesced
		if w.Error != "" {
			b.Err = errors.New(w.Error)
			continue
		}
		var err error
		if len(w.NN) > 0 {
			if b.NN, err = DecodeNN(w.NN); err != nil {
				return nil, fmt.Errorf("lbsq: response %d: %w", i, err)
			}
		}
		if len(w.Window) > 0 {
			if b.Window, err = DecodeWindow(w.Window, universe); err != nil {
				return nil, fmt.Errorf("lbsq: response %d: %w", i, err)
			}
		}
		if len(w.Range) > 0 {
			if b.Range, err = DecodeRange(w.Range); err != nil {
				return nil, fmt.Errorf("lbsq: response %d: %w", i, err)
			}
		}
		b.Count = w.Count
		for _, it := range w.Neighbors {
			b.Neighbors = append(b.Neighbors, Neighbor{
				Item: rtree.Item{ID: it.ID, P: Pt(it.X, it.Y)}, Dist: it.Dist,
			})
		}
		for _, it := range w.Items {
			b.Items = append(b.Items, rtree.Item{ID: it.ID, P: Pt(it.X, it.Y)})
		}
	}
	return resps, nil
}

// batchHandler serves POST /v1/batch (and its legacy alias): decode the
// JSON batch, run it through the executor — cache, coalescing, grouped
// shard scatter and all — and frame the answers back out.
func (db *DB) batchHandler(ew errorWriter) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			ew(w, http.StatusMethodNotAllowed, "batch requires POST")
			return
		}
		var body struct {
			Requests []batchWireReq `json:"requests"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			ew(w, http.StatusBadRequest, "bad batch body: "+err.Error())
			return
		}
		if len(body.Requests) > maxWireBatch {
			ew(w, http.StatusBadRequest,
				fmt.Sprintf("batch of %d exceeds the %d-request limit", len(body.Requests), maxWireBatch))
			return
		}
		reqs, err := toWireRequests(body.Requests)
		if err != nil {
			ew(w, http.StatusBadRequest, err.Error())
			return
		}
		resps, err := db.Batch(r.Context(), reqs)
		if err != nil {
			writeQueryError(ew, w, r, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Responses []batchWireResp `json:"responses"`
		}{toWireResponses(resps)})
	}
}

// RemoteOption configures a RemoteClient built by NewRemoteClient.
// Options apply in order; the last setting of a knob wins.
type RemoteOption func(*RemoteClient)

// WithTimeout bounds every request of the client at d, overriding the
// 10-second default (it adjusts the client's http.Client, preserving
// any transport installed by an earlier WithHTTPClient).
func WithTimeout(d time.Duration) RemoteOption {
	return func(c *RemoteClient) {
		hc := *c.httpClient()
		hc.Timeout = d
		c.HTTP = &hc
	}
}

// WithHTTPClient uses hc for every request — bring your own transport,
// proxy, or TLS configuration.
func WithHTTPClient(hc *http.Client) RemoteOption {
	return func(c *RemoteClient) { c.HTTP = hc }
}

// WithBaseHeader adds a header to every request the client issues —
// authorization tokens, tracing ids, and the like. Repeat for multiple
// headers.
func WithBaseHeader(key, value string) RemoteOption {
	return func(c *RemoteClient) {
		if c.header == nil {
			c.header = make(http.Header)
		}
		c.header.Add(key, value)
	}
}

// WithSession enables incremental (delta) NN transfer under the given
// session id: the server remembers which items this session has seen.
func WithSession(id string) RemoteOption {
	return func(c *RemoteClient) { c.Session = id }
}

// NewRemoteClient returns a client for a DB served by Handler at base
// (e.g. "http://localhost:8080"), configured by opts. This constructor
// is the canonical way to build a client; mutating the exported struct
// fields directly is deprecated and retained only for compatibility.
func NewRemoteClient(base string, opts ...RemoteOption) *RemoteClient {
	c := &RemoteClient{Base: base}
	for _, o := range opts {
		o(c)
	}
	return c
}

// post issues one JSON POST and returns the response body; non-2xx
// responses are surfaced as errors carrying the body (for /v1 paths,
// the JSON error envelope).
func (c *RemoteClient) post(ctx context.Context, path string, body interface{}) ([]byte, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	c.applyHeader(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, newRemoteError(resp.StatusCode, out)
	}
	return out, nil
}

// applyHeader stamps the client's base headers onto one request.
func (c *RemoteClient) applyHeader(req *http.Request) {
	for k, vs := range c.header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
}

// Batch executes a heterogeneous batch of queries in one POST
// /v1/batch round trip. The returned slice parallels reqs; per-request
// failures are carried in BatchResponse.Err. Fetch (or set) the
// client's Universe first — window validity regions are rebuilt
// client-side against it.
func (c *RemoteClient) Batch(ctx context.Context, reqs []BatchRequest) ([]BatchResponse, error) {
	wire, err := fromWireRequests(reqs)
	if err != nil {
		return nil, err
	}
	body, err := c.post(ctx, "/v1/batch", struct {
		Requests []batchWireReq `json:"requests"`
	}{wire})
	if err != nil {
		return nil, err
	}
	var out struct {
		Responses []batchWireResp `json:"responses"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, err
	}
	if len(out.Responses) != len(reqs) {
		return nil, fmt.Errorf("lbsq: batch returned %d responses for %d requests",
			len(out.Responses), len(reqs))
	}
	return fromWireResponses(out.Responses, c.Universe)
}
