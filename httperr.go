package lbsq

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// RemoteError is the typed error RemoteClient returns for a non-2xx
// server response. For /v1 endpoints it carries the JSON error
// envelope's code and message; legacy plain-text bodies land in
// Message with Code 0. Match on it with errors.As:
//
//	var re *lbsq.RemoteError
//	if errors.As(err, &re) && re.Status == http.StatusUnprocessableEntity { ... }
//
// or on the session sentinels with errors.Is (a 404/410/429 response
// compares equal to ErrSessionNotFound / ErrSessionExpired /
// ErrSessionLimit).
type RemoteError struct {
	// Status is the HTTP status code of the response.
	Status int
	// Code is the code field of the /v1 error envelope (the envelope
	// repeats the status, so normally Code == Status; 0 when the body
	// was not an envelope).
	Code int
	// Message is the envelope's error message, or the raw body for a
	// non-envelope response.
	Message string
}

// Error formats like "lbsq: server returned 422 Unprocessable Entity:
// <message>", preserving the historic untyped string.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("lbsq: server returned %d %s: %s",
		e.Status, http.StatusText(e.Status), strings.TrimSpace(e.Message))
}

// Is maps the session-protocol statuses onto the sentinel errors, so
// errors.Is(err, ErrSessionNotFound) works on a remote session exactly
// as on a local one.
func (e *RemoteError) Is(target error) bool {
	switch target {
	case ErrSessionNotFound:
		return e.Status == http.StatusNotFound
	case ErrSessionExpired:
		return e.Status == http.StatusGone
	case ErrSessionLimit:
		return e.Status == http.StatusTooManyRequests
	}
	return false
}

// newRemoteError builds the typed error for one non-2xx response:
// the /v1 envelope is decoded when present, anything else keeps the
// raw body as the message.
func newRemoteError(status int, body []byte) *RemoteError {
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error != "" {
		return &RemoteError{Status: status, Code: env.Code, Message: env.Error}
	}
	return &RemoteError{Status: status, Message: string(body)}
}
