package lbsq

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"
)

// TestOpenShardedEquivalence drives the sharded DB through the public
// API and compares every query type against an unsharded DB over the
// same items.
func TestOpenShardedEquivalence(t *testing.T) {
	items, uni := UniformDataset(3000, 41)
	plain, err := Open(items, uni, nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(items, uni, &Options{Shards: 4, ShardStrategy: ShardKDMedian})
	if err != nil {
		t.Fatal(err)
	}
	if !db.Sharded() || db.NumShards() != 4 || db.Cluster() == nil || db.Server() != nil {
		t.Fatalf("sharded DB accessors wrong: sharded=%v shards=%d", db.Sharded(), db.NumShards())
	}
	if db.Len() != plain.Len() || db.Universe() != plain.Universe() {
		t.Fatalf("Len/Universe mismatch: %d/%v vs %d/%v", db.Len(), db.Universe(), plain.Len(), plain.Universe())
	}
	stats := db.ShardStatsList()
	if len(stats) != 4 {
		t.Fatalf("ShardStatsList returned %d entries", len(stats))
	}
	count := 0
	for _, st := range stats {
		count += st.Count
	}
	if count != db.Len() {
		t.Fatalf("shard stats sum to %d, Len is %d", count, db.Len())
	}

	ids := func(items []Item) []int64 {
		out := make([]int64, len(items))
		for i, it := range items {
			out[i] = it.ID
		}
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		return out
	}
	eq := func(a, b []int64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		q := Pt(rng.Float64(), rng.Float64())
		k := 1 + i%8
		pv, _, perr := plain.NN(context.Background(), q, k)
		sv, _, serr := db.NN(context.Background(), q, k)
		if (perr == nil) != (serr == nil) {
			t.Fatalf("NN error mismatch at %v: %v vs %v", q, perr, serr)
		}
		if perr == nil && !eq(ids(pv.Result()), ids(sv.Result())) {
			t.Fatalf("NN result mismatch at %v k=%d", q, k)
		}
		pw, _, err1 := plain.WindowAt(context.Background(), q, 0.05, 0.04)
		sw, _, err2 := db.WindowAt(context.Background(), q, 0.05, 0.04)
		if err1 != nil || err2 != nil {
			t.Fatalf("window error at %v: %v / %v", q, err1, err2)
		}
		if !eq(ids(pw.Result), ids(sw.Result)) {
			t.Fatalf("window result mismatch at %v", q)
		}
		pr, _, err1 := plain.Range(context.Background(), q, 0.03)
		sr, _, err2 := db.Range(context.Background(), q, 0.03)
		if err1 != nil || err2 != nil {
			t.Fatalf("range error at %v: %v / %v", q, err1, err2)
		}
		if !eq(ids(pr.Result), ids(sr.Result)) {
			t.Fatalf("range result mismatch at %v", q)
		}
		w := R(q.X-0.1, q.Y-0.1, q.X+0.1, q.Y+0.1)
		pc, err1 := plain.Count(context.Background(), w)
		dc, err2 := db.Count(context.Background(), w)
		if err1 != nil || err2 != nil {
			t.Fatalf("count error at %v: %v / %v", w, err1, err2)
		}
		if pc != dc {
			t.Fatalf("count mismatch at %v", w)
		}
		ps, err1 := plain.RangeSearch(context.Background(), w)
		ds, err2 := db.RangeSearch(context.Background(), w)
		if err1 != nil || err2 != nil {
			t.Fatalf("range search error at %v: %v / %v", w, err1, err2)
		}
		if !eq(ids(ps), ids(ds)) {
			t.Fatalf("range search mismatch at %v", w)
		}
	}

	// KNearest and RouteNN sanity.
	if nbs, err := db.KNearest(context.Background(), Pt(0.5, 0.5), 5); err != nil || len(nbs) != 5 {
		t.Fatalf("KNearest returned %d neighbors (err %v)", len(nbs), err)
	}
	ivs, err := db.RouteNN(context.Background(), Pt(0.1, 0.1), Pt(0.9, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) == 0 {
		t.Fatal("RouteNN returned no intervals")
	}
}

// TestShardedMobileClients: the caching mobile clients work against a
// sharded DB through the QueryEngine interface.
func TestShardedMobileClients(t *testing.T) {
	items, uni := UniformDataset(2000, 43)
	db, err := OpenSharded(items, uni, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	nnc := db.NewNNClient(3)
	wc := db.NewWindowClient(0.06, 0.06)
	rc := db.NewRangeClient(0.05)
	rng := rand.New(rand.NewSource(44))
	p := Pt(0.5, 0.5)
	for i := 0; i < 50; i++ {
		p = Pt(p.X+(rng.Float64()-0.5)*0.02, p.Y+(rng.Float64()-0.5)*0.02)
		got, err := nnc.At(p)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := db.NN(context.Background(), p, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want.Neighbors) {
			t.Fatalf("client returned %d items, server %d", len(got), len(want.Neighbors))
		}
		if _, err := wc.At(p); err != nil {
			t.Fatal(err)
		}
		if _, err := rc.At(p); err != nil {
			t.Fatal(err)
		}
	}
	if nnc.Stats.ServerQueries == 0 || nnc.Stats.PositionUpdates == 0 {
		t.Fatalf("client stats not accumulated: %+v", nnc.Stats)
	}
}

// TestShardedUnsupported: single-server-only surfaces fail loudly on a
// sharded DB instead of misbehaving.
func TestShardedUnsupported(t *testing.T) {
	items, uni := UniformDataset(500, 45)
	db, err := OpenSharded(items, uni, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SaveIndex(t.TempDir() + "/idx.lbsq"); err == nil {
		t.Fatal("SaveIndex on a sharded DB must error")
	}
	if _, err := db.NewZL01Client(0.01); err == nil {
		t.Fatal("NewZL01Client on a sharded DB must error")
	}
	if _, err := db.NewSR01Client(1, 4); !errors.Is(err, ErrShardedUnsupported) {
		t.Errorf("NewSR01Client on a sharded DB: err = %v, want ErrShardedUnsupported", err)
	}
	if _, err := db.NewTP02Client(1); !errors.Is(err, ErrShardedUnsupported) {
		t.Errorf("NewTP02Client on a sharded DB: err = %v, want ErrShardedUnsupported", err)
	}
	if _, err := db.NewNaiveClient(1); !errors.Is(err, ErrShardedUnsupported) {
		t.Errorf("NewNaiveClient on a sharded DB: err = %v, want ErrShardedUnsupported", err)
	}
	if err := db.SaveIndex(t.TempDir() + "/idx2.lbsq"); !errors.Is(err, ErrShardedUnsupported) {
		t.Errorf("SaveIndex on a sharded DB: err = %v, want ErrShardedUnsupported", err)
	}

	if _, err := OpenSharded(items, uni, 0, nil); err == nil {
		t.Fatal("OpenSharded with 0 shards must error")
	}
	one, err := OpenSharded(items, uni, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if one.Sharded() {
		t.Fatal("1-shard DB should use the single-server layout")
	}
}

// TestShardedInsertDelete routes mutations through the public API.
func TestShardedInsertDelete(t *testing.T) {
	items, uni := UniformDataset(1000, 46)
	db, err := OpenSharded(items, uni, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	it := Item{ID: 1 << 41, P: Pt(0.25, 0.75)}
	if err := db.Insert(it); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1001 {
		t.Fatalf("Len after insert = %d", db.Len())
	}
	v, _, err := db.NN(context.Background(), it.P, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Neighbors[0].Item.ID != it.ID {
		t.Fatalf("NN after insert = %d, want %d", v.Neighbors[0].Item.ID, it.ID)
	}
	if ok, err := db.Delete(it); err != nil || !ok {
		t.Fatalf("Delete failed: ok=%v err=%v", ok, err)
	}
	if err := db.Insert(Item{ID: 5, P: Pt(7, 7)}); err == nil {
		t.Fatal("insert outside universe must error")
	}
}
