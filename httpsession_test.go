package lbsq

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// doJSON issues one request with an optional JSON body and returns the
// status and raw response body.
func doJSON(t *testing.T, method, url string, body interface{}) (int, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		payload, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(payload)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func newSessionTestServer(t *testing.T) (*DB, *httptest.Server) {
	t.Helper()
	items, uni := UniformDataset(2000, 31)
	db, err := Open(items, uni, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(db.Handler())
	t.Cleanup(srv.Close)
	return db, srv
}

// TestSessionHTTPLifecycle drives one NN session through the full wire
// protocol: open, in-region move (hit, no payload), push invalidation
// observed via the events long-poll, refreshing move, close.
func TestSessionHTTPLifecycle(t *testing.T) {
	db, srv := newSessionTestServer(t)

	q := Pt(0.5, 0.5)
	code, body := doJSON(t, http.MethodPost, srv.URL+"/v1/session",
		sessionOpenWire{Type: "nn", X: q.X, Y: q.Y, K: 2})
	if code != http.StatusOK {
		t.Fatalf("open: status %d: %s", code, body)
	}
	var opened sessionOpenResp
	if err := json.Unmarshal(body, &opened); err != nil {
		t.Fatal(err)
	}
	if opened.ID == "" || opened.Kind != "nn" || len(opened.Payload) == 0 {
		t.Fatalf("open response incomplete: %+v", opened)
	}
	v, err := DecodeNN(opened.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Neighbors) != 2 {
		t.Fatalf("open payload has %d neighbors, want 2", len(v.Neighbors))
	}

	// A microscopic move stays in the region: hit, no payload resent.
	code, body = doJSON(t, http.MethodPost, srv.URL+"/v1/session/"+opened.ID+"/move",
		sessionMoveWire{X: q.X + 1e-9, Y: q.Y})
	if code != http.StatusOK {
		t.Fatalf("move: status %d: %s", code, body)
	}
	var mv sessionMoveResp
	if err := json.Unmarshal(body, &mv); err != nil {
		t.Fatal(err)
	}
	if !mv.Hit || len(mv.Payload) != 0 {
		t.Fatalf("in-region move: hit=%v payload=%d bytes, want hit with no payload",
			mv.Hit, len(mv.Payload))
	}

	// Insert an intruder next to the query point: the session must be
	// push-invalidated, and the events long-poll must report it.
	if err := db.Insert(Item{ID: 999999, P: Pt(q.X+1e-7, q.Y)}); err != nil {
		t.Fatal(err)
	}
	code, body = doJSON(t, http.MethodGet,
		srv.URL+"/v1/session/"+opened.ID+"/events?since=0&timeout_ms=5000", nil)
	if code != http.StatusOK {
		t.Fatalf("events: status %d: %s", code, body)
	}
	var ev sessionEventsResp
	if err := json.Unmarshal(body, &ev); err != nil {
		t.Fatal(err)
	}
	if !ev.Fired || ev.Seq == 0 {
		t.Fatalf("events after insert: fired=%v seq=%d, want a push invalidation", ev.Fired, ev.Seq)
	}

	// The next move re-queries and the refreshed payload contains the
	// intruder as the nearest neighbor.
	code, body = doJSON(t, http.MethodPost, srv.URL+"/v1/session/"+opened.ID+"/move",
		sessionMoveWire{X: q.X, Y: q.Y})
	if code != http.StatusOK {
		t.Fatalf("move after invalidation: status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &mv); err != nil {
		t.Fatal(err)
	}
	if mv.Hit || !mv.Invalidated || len(mv.Payload) == 0 {
		t.Fatalf("move after invalidation: %+v, want invalidated requery with payload", mv)
	}
	if v, err = DecodeNN(mv.Payload); err != nil {
		t.Fatal(err)
	}
	if v.Neighbors[0].Item.ID != 999999 {
		t.Fatalf("refreshed nearest neighbor is %d, want the intruder", v.Neighbors[0].Item.ID)
	}

	code, _ = doJSON(t, http.MethodDelete, srv.URL+"/v1/session/"+opened.ID, nil)
	if code != http.StatusNoContent {
		t.Fatalf("close: status %d, want 204", code)
	}
	if n := db.ActiveSessions(); n != 0 {
		t.Fatalf("ActiveSessions after close = %d, want 0", n)
	}
}

// TestSessionHTTPWindow exercises the window-session flavor of the
// protocol: open, in-rect hit, region-exit requery with payload.
func TestSessionHTTPWindow(t *testing.T) {
	db, srv := newSessionTestServer(t)

	code, body := doJSON(t, http.MethodPost, srv.URL+"/v1/session",
		sessionOpenWire{Type: "window", X: 0.5, Y: 0.5, Qx: 0.2, Qy: 0.2})
	if code != http.StatusOK {
		t.Fatalf("open window: status %d: %s", code, body)
	}
	var opened sessionOpenResp
	if err := json.Unmarshal(body, &opened); err != nil {
		t.Fatal(err)
	}
	if opened.Kind != "window" || len(opened.Payload) == 0 {
		t.Fatalf("open window response incomplete: %+v", opened)
	}

	code, body = doJSON(t, http.MethodPost, srv.URL+"/v1/session/"+opened.ID+"/move",
		sessionMoveWire{X: 0.5 + 1e-9, Y: 0.5})
	var mv sessionMoveResp
	if err := json.Unmarshal(body, &mv); err != nil {
		t.Fatalf("move: status %d: %v", code, err)
	}
	if !mv.Hit {
		t.Fatalf("in-rect window move: %+v, want hit", mv)
	}

	// Jump across the universe: requery with a fresh window payload.
	code, body = doJSON(t, http.MethodPost, srv.URL+"/v1/session/"+opened.ID+"/move",
		sessionMoveWire{X: 0.05, Y: 0.95})
	if err := json.Unmarshal(body, &mv); err != nil {
		t.Fatalf("far move: status %d: %v", code, err)
	}
	if mv.Hit || len(mv.Payload) == 0 {
		t.Fatalf("far window move: %+v, want requery with payload", mv)
	}
	if _, err := DecodeWindow(mv.Payload, db.Universe()); err != nil {
		t.Fatalf("window payload does not decode: %v", err)
	}
}

// TestSessionHTTPErrorEnvelope locks the session error contract:
// unknown ids are 404 session_not_found, closed sessions are 410
// session_expired, malformed requests are 400 — all in the uniform
// {"error","code"} envelope.
func TestSessionHTTPErrorEnvelope(t *testing.T) {
	_, srv := newSessionTestServer(t)

	// Open and immediately close one session so its id is tombstoned.
	code, body := doJSON(t, http.MethodPost, srv.URL+"/v1/session",
		sessionOpenWire{Type: "nn", X: 0.5, Y: 0.5, K: 1})
	if code != http.StatusOK {
		t.Fatalf("open: status %d: %s", code, body)
	}
	var opened sessionOpenResp
	if err := json.Unmarshal(body, &opened); err != nil {
		t.Fatal(err)
	}
	if code, _ = doJSON(t, http.MethodDelete, srv.URL+"/v1/session/"+opened.ID, nil); code != http.StatusNoContent {
		t.Fatalf("close: status %d", code)
	}

	cases := []struct {
		name     string
		method   string
		path     string
		body     interface{}
		wantCode int
		wantMsg  string
	}{
		{"move unknown id", http.MethodPost, "/v1/session/s999999/move",
			sessionMoveWire{X: 0.5, Y: 0.5}, http.StatusNotFound, msgSessionNotFound},
		{"events unknown id", http.MethodGet, "/v1/session/s999999/events?timeout_ms=10",
			nil, http.StatusNotFound, msgSessionNotFound},
		{"close unknown id", http.MethodDelete, "/v1/session/s999999",
			nil, http.StatusNotFound, msgSessionNotFound},
		{"malformed id", http.MethodPost, "/v1/session/bogus/move",
			sessionMoveWire{X: 0.5, Y: 0.5}, http.StatusNotFound, msgSessionNotFound},
		{"move closed session", http.MethodPost, "/v1/session/" + opened.ID + "/move",
			sessionMoveWire{X: 0.5, Y: 0.5}, http.StatusGone, msgSessionExpired},
		{"events closed session", http.MethodGet, "/v1/session/" + opened.ID + "/events?timeout_ms=10",
			nil, http.StatusGone, msgSessionExpired},
		{"double close", http.MethodDelete, "/v1/session/" + opened.ID,
			nil, http.StatusGone, msgSessionExpired},
		{"unknown type", http.MethodPost, "/v1/session",
			sessionOpenWire{Type: "range", X: 0.5, Y: 0.5}, http.StatusBadRequest, ""},
		{"bad k", http.MethodPost, "/v1/session",
			sessionOpenWire{Type: "nn", X: 0.5, Y: 0.5, K: -2}, http.StatusBadRequest, ""},
		{"bad window extents", http.MethodPost, "/v1/session",
			sessionOpenWire{Type: "window", X: 0.5, Y: 0.5, Qx: -1, Qy: 0.1}, http.StatusBadRequest, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := doJSON(t, tc.method, srv.URL+tc.path, tc.body)
			if code != tc.wantCode {
				t.Fatalf("status %d, want %d (%s)", code, tc.wantCode, body)
			}
			var env errorEnvelope
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("error body is not the envelope: %s", body)
			}
			if env.Code != tc.wantCode {
				t.Errorf("envelope code %d, want %d", env.Code, tc.wantCode)
			}
			if tc.wantMsg != "" && env.Error != tc.wantMsg {
				t.Errorf("envelope error %q, want %q", env.Error, tc.wantMsg)
			}
		})
	}
}

// TestSessionEventsLongPollTimeout verifies an idle events poll returns
// fired=false after roughly the requested wait, not immediately and not
// hanging.
func TestSessionEventsLongPollTimeout(t *testing.T) {
	_, srv := newSessionTestServer(t)

	code, body := doJSON(t, http.MethodPost, srv.URL+"/v1/session",
		sessionOpenWire{Type: "nn", X: 0.4, Y: 0.4, K: 1})
	if code != http.StatusOK {
		t.Fatalf("open: status %d: %s", code, body)
	}
	var opened sessionOpenResp
	if err := json.Unmarshal(body, &opened); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	code, body = doJSON(t, http.MethodGet,
		srv.URL+"/v1/session/"+opened.ID+"/events?since="+fmt.Sprint(opened.Seq)+"&timeout_ms=100", nil)
	if code != http.StatusOK {
		t.Fatalf("events: status %d: %s", code, body)
	}
	var ev sessionEventsResp
	if err := json.Unmarshal(body, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Fired {
		t.Fatalf("idle events poll fired: %+v", ev)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("events poll returned after %v, want a ~100ms long-poll", elapsed)
	}
}

// TestMovingClient drives the client SDK end to end: local answers
// while inside the cached region, a server round trip on region exit,
// and a push-invalidation observed via PollEvents forcing a refresh.
func TestMovingClient(t *testing.T) {
	db, srv := newSessionTestServer(t)
	c := NewRemoteClient(srv.URL)

	start := Pt(0.5, 0.5)
	mc, err := c.OpenMoving(context.Background(), start, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close(context.Background())

	// Microscopic wiggles stay inside the region: all local.
	before := mc.Stats.ServerQueries
	for i := 0; i < 10; i++ {
		v, err := mc.At(context.Background(), Pt(start.X+float64(i)*1e-10, start.Y))
		if err != nil {
			t.Fatal(err)
		}
		if len(v.Neighbors) != 2 {
			t.Fatalf("local answer has %d neighbors, want 2", len(v.Neighbors))
		}
	}
	if mc.Stats.ServerQueries != before {
		t.Fatalf("in-region moves contacted the server %d times, want 0",
			mc.Stats.ServerQueries-before)
	}
	if mc.Stats.CacheHits != 10 {
		t.Fatalf("CacheHits = %d, want 10", mc.Stats.CacheHits)
	}

	// A cross-universe jump must leave the region and refresh remotely.
	before = mc.Stats.ServerQueries
	if _, err := mc.At(context.Background(), Pt(0.05, 0.95)); err != nil {
		t.Fatal(err)
	}
	if mc.Stats.ServerQueries != before+1 {
		t.Fatalf("region exit issued %d server queries, want 1", mc.Stats.ServerQueries-before)
	}

	// Push invalidation: an intruder lands on the client's position.
	// PollEvents observes it, and the next At refreshes even though the
	// position did not change.
	pos := Pt(0.05, 0.95)
	if err := db.Insert(Item{ID: 888888, P: Pt(pos.X+1e-8, pos.Y)}); err != nil {
		t.Fatal(err)
	}
	fired, err := mc.PollEvents(context.Background(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("PollEvents did not observe the push invalidation")
	}
	v, err := mc.At(context.Background(), pos)
	if err != nil {
		t.Fatal(err)
	}
	if v.Neighbors[0].Item.ID != 888888 {
		t.Fatalf("post-invalidation nearest is %d, want the intruder", v.Neighbors[0].Item.ID)
	}

	if err := mc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The session is gone server-side: further moves surface the
	// sentinel error.
	if _, err := mc.At(context.Background(), Pt(0.9, 0.9)); err == nil {
		t.Fatal("At after Close succeeded, want ErrSessionExpired")
	} else if !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("At after Close: %v, want ErrSessionExpired", err)
	}
}
