package lbsq

// Benchmark harness: one benchmark per evaluation figure of the paper
// (delegating to internal/experiments, which prints the same series the
// paper plots), plus micro-benchmarks for the individual operations.
//
//	go test -bench=Fig -benchtime=1x        # regenerate every figure once
//	LBSQ_FULL=1 go test -bench=Fig22a ...   # paper-scale cardinalities
//	go test -bench=Op -benchmem             # per-operation costs
//
// Figure benchmarks report headline numbers via b.ReportMetric so the
// trends are visible straight from the bench output.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"lbsq/internal/experiments"
	"lbsq/internal/nn"
)

func benchConfig() experiments.Config {
	cfg := experiments.Config{Queries: 30, Seed: 2003}
	if os.Getenv("LBSQ_FULL") == "1" {
		cfg.Full = true
		cfg.Queries = 500
	}
	return cfg
}

// lastRowMetric extracts column col of the last row of the first table
// as a float metric (the "largest x-axis value" data point).
func lastRowMetric(tables []experiments.Table, col int) float64 {
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		return 0
	}
	row := tables[0].Rows[len(tables[0].Rows)-1]
	if col >= len(row) {
		return 0
	}
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		return 0
	}
	return v
}

func benchFigure(b *testing.B, id string, metricCol int, metricName string) {
	b.Helper()
	e, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := benchConfig()
	var tables []experiments.Table
	for i := 0; i < b.N; i++ {
		tables = e.Run(cfg)
	}
	for _, t := range tables {
		if testing.Verbose() {
			t.Fprint(os.Stderr)
		} else {
			t.Fprint(io.Discard)
		}
	}
	if m := lastRowMetric(tables, metricCol); m != 0 {
		b.ReportMetric(m, metricName)
	}
}

func BenchmarkFig22a(b *testing.B) { benchFigure(b, "22a", 1, "area") }
func BenchmarkFig22b(b *testing.B) { benchFigure(b, "22b", 1, "area") }
func BenchmarkFig23(b *testing.B)  { benchFigure(b, "23", 1, "area_m2") }
func BenchmarkFig24(b *testing.B)  { benchFigure(b, "24", 1, "edges") }
func BenchmarkFig25(b *testing.B)  { benchFigure(b, "25", 1, "sinf") }
func BenchmarkFig26(b *testing.B)  { benchFigure(b, "26", 1, "sinf") }
func BenchmarkFig27(b *testing.B)  { benchFigure(b, "27", 2, "tpnnNA") }
func BenchmarkFig28(b *testing.B)  { benchFigure(b, "28", 2, "tpnnNA") }
func BenchmarkFig29(b *testing.B)  { benchFigure(b, "29", 1, "area") }
func BenchmarkFig30(b *testing.B)  { benchFigure(b, "30", 1, "area_m2") }
func BenchmarkFig31(b *testing.B)  { benchFigure(b, "31", 1, "inner") }
func BenchmarkFig32(b *testing.B)  { benchFigure(b, "32", 1, "inner") }
func BenchmarkFig34(b *testing.B)  { benchFigure(b, "34", 1, "resultNA") }
func BenchmarkFig35(b *testing.B)  { benchFigure(b, "35", 1, "resultPA") }

func BenchmarkClientSavings(b *testing.B) { benchFigure(b, "savings", 1, "queries") }

// Extension and ablation experiments (no paper figure to match).
func BenchmarkRangeExtension(b *testing.B) { benchFigure(b, "range", 1, "area") }
func BenchmarkDeltaExtension(b *testing.B) { benchFigure(b, "delta", 2, "kbPlain") }
func BenchmarkAblations(b *testing.B)      { benchFigure(b, "ablation", 1, "bfNA") }

// --- per-operation micro-benchmarks --------------------------------------

var (
	benchOnce sync.Once
	benchDB   *DB
)

func benchDatabase(b *testing.B) *DB {
	b.Helper()
	benchOnce.Do(func() {
		items, uni := UniformDataset(100_000, 2003)
		db, err := Open(items, uni, nil)
		if err != nil {
			panic(err)
		}
		benchDB = db
	})
	return benchDB
}

func benchPoints(n int) []Point {
	rng := rand.New(rand.NewSource(77))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(rng.Float64(), rng.Float64())
	}
	return pts
}

// BenchmarkOpKNearest measures a plain best-first k-NN query (k=1).
func BenchmarkOpKNearest(b *testing.B) {
	db := benchDatabase(b)
	pts := benchPoints(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.KNearest(context.Background(), pts[i%len(pts)], 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpNNValidity measures a full location-based 1NN query: the
// NN search plus the TPNN influence-set computation.
func BenchmarkOpNNValidity(b *testing.B) {
	db := benchDatabase(b)
	pts := benchPoints(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.NN(context.Background(), pts[i%len(pts)], 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpNNValidityK10 is the k=10 variant.
func BenchmarkOpNNValidityK10(b *testing.B) {
	db := benchDatabase(b)
	pts := benchPoints(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.NN(context.Background(), pts[i%len(pts)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpWindowValidity measures a location-based window query
// (window = 0.1% of the universe).
func BenchmarkOpWindowValidity(b *testing.B) {
	db := benchDatabase(b)
	pts := benchPoints(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.WindowAt(context.Background(), pts[i%len(pts)], 0.0316, 0.0316); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpRangeSearch measures the plain window query underneath.
func BenchmarkOpRangeSearch(b *testing.B) {
	db := benchDatabase(b)
	pts := benchPoints(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.RangeSearch(context.Background(), squareAt(pts[i%len(pts)], 0.0316)); err != nil {
			b.Fatal(err)
		}
	}
}

// squareAt builds the square window for the bench above.
func squareAt(c Point, side float64) Rect {
	return R(c.X-side/2, c.Y-side/2, c.X+side/2, c.Y+side/2)
}

// BenchmarkOpEncodeNN measures response serialization.
func BenchmarkOpEncodeNN(b *testing.B) {
	db := benchDatabase(b)
	v, _, err := db.NN(context.Background(), Pt(0.5, 0.5), 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := EncodeNN(v)
		if i == 0 {
			b.SetBytes(int64(len(buf)))
		}
	}
}

// BenchmarkOpDecodeNN measures response parsing (the client side).
func BenchmarkOpDecodeNN(b *testing.B) {
	db := benchDatabase(b)
	v, _, err := db.NN(context.Background(), Pt(0.5, 0.5), 4)
	if err != nil {
		b.Fatal(err)
	}
	buf := EncodeNN(v)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeNN(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpValidityCheck measures the client-side half-plane test —
// the work a mobile device does per position update.
func BenchmarkOpValidityCheck(b *testing.B) {
	db := benchDatabase(b)
	v, _, err := db.NN(context.Background(), Pt(0.5, 0.5), 1)
	if err != nil {
		b.Fatal(err)
	}
	pts := benchPoints(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Valid(pts[i%len(pts)])
	}
}

// BenchmarkShardScaling measures mixed-workload throughput (NN with
// validity, window, range) against the shard count, on uniform and
// GR-like (skewed) data. Run with -cpu 8 (or more) so the scatter
// parallelism is visible; qps is reported per sub-benchmark.
//
//	go test -bench=ShardScaling -cpu 8 -benchtime=2s
func BenchmarkShardScaling(b *testing.B) {
	type ds struct {
		name     string
		items    []Item
		uni      Rect
		strategy ShardStrategy
	}
	uItems, uUni := UniformDataset(50_000, 2003)
	gItems, gUni := GRLikeDataset(23_268, 2003)
	for _, d := range []ds{
		{"uniform", uItems, uUni, ShardGrid},
		{"gr", gItems, gUni, ShardKDMedian},
	} {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards=%d", d.name, shards), func(b *testing.B) {
				db, err := Open(d.items, d.uni, &Options{Shards: shards, ShardStrategy: d.strategy})
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(7))
				pts := make([]Point, 1024)
				for i := range pts {
					it := d.items[rng.Intn(len(d.items))]
					pts[i] = Pt(it.P.X+(rng.Float64()-0.5)*0.01*d.uni.Width(),
						it.P.Y+(rng.Float64()-0.5)*0.01*d.uni.Height())
				}
				qx, qy := 0.02*d.uni.Width(), 0.02*d.uni.Height()
				radius := 0.01 * d.uni.Width()
				var ctr int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						i := atomic.AddInt64(&ctr, 1)
						q := pts[i%int64(len(pts))]
						var err error
						switch i % 4 {
						case 0:
							_, _, err = db.NN(context.Background(), q, 1)
						case 1:
							_, _, err = db.NN(context.Background(), q, int(i%16)+1)
						case 2:
							_, _, err = db.WindowAt(context.Background(), q, qx, qy)
						default:
							_, _, err = db.Range(context.Background(), q, radius)
						}
						if err != nil {
							b.Error(err)
							return
						}
					}
				})
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
			})
		}
	}
}

// BenchmarkOpInsert measures dynamic R*-tree insertion (in-memory
// baseline for BenchmarkOpInsertDurable).
func BenchmarkOpInsert(b *testing.B) {
	items, uni := UniformDataset(10_000, 5)
	db, err := Open(items, uni, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Insert(Item{ID: int64(100_000 + i), P: Pt(rng.Float64(), rng.Float64())}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpInsertDurable measures write-ahead-logged insertion
// against BenchmarkOpInsert's in-memory line: "always" pays a
// group-commit fsync per acknowledged insert (single writer, so no
// batching), "os" pays only the log append.
func BenchmarkOpInsertDurable(b *testing.B) {
	for _, mode := range []SyncMode{SyncAlways, SyncOS} {
		b.Run(string(mode), func(b *testing.B) {
			items, uni := UniformDataset(10_000, 5)
			db, err := Open(items, uni, &Options{DataDir: b.TempDir(), SyncMode: mode})
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				if err := db.Close(); err != nil {
					b.Error(err)
				}
			}()
			rng := rand.New(rand.NewSource(6))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Insert(Item{ID: int64(100_000 + i), P: Pt(rng.Float64(), rng.Float64())}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchScaling compares the batched query engine against the
// sequential per-query path on an 8-shard DB: sequential issues one
// scatter per query from parallel clients, batched issues one grouped
// scatter per shard per phase for 64 queries at a time. One benchmark
// iteration is one query either way, so ns/op (and the qps metric)
// compare directly.
func BenchmarkBatchScaling(b *testing.B) {
	items, uni := UniformDataset(50_000, 2003)
	db, err := Open(items, uni, &Options{Shards: 8, ShardStrategy: ShardGrid})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	qx, qy := 0.02*uni.Width(), 0.02*uni.Height()
	radius := 0.01 * uni.Width()
	reqs := make([]BatchRequest, 1024)
	for i := range reqs {
		q := Pt(rng.Float64(), rng.Float64())
		switch i % 4 {
		case 0:
			reqs[i] = BatchRequest{Op: BatchNN, Q: q, K: 1}
		case 1:
			reqs[i] = BatchRequest{Op: BatchNN, Q: q, K: i%16 + 1}
		case 2:
			reqs[i] = BatchRequest{Op: BatchWindow, W: R(q.X-qx/2, q.Y-qy/2, q.X+qx/2, q.Y+qy/2)}
		default:
			reqs[i] = BatchRequest{Op: BatchRange, Q: q, Radius: radius}
		}
	}
	ctx := context.Background()

	b.Run("sequential", func(b *testing.B) {
		var ctr int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := atomic.AddInt64(&ctr, 1)
				if _, err := db.Batch(ctx, reqs[i%int64(len(reqs)):i%int64(len(reqs))+1]); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	})
	b.Run("batched", func(b *testing.B) {
		const size = 64
		for lo := 0; lo < b.N; lo += size {
			n := size
			if lo+n > b.N {
				n = b.N - lo
			}
			start := lo % len(reqs)
			if start+n > len(reqs) {
				start = 0
			}
			if _, err := db.Batch(ctx, reqs[start:start+n]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	})
}

// BenchmarkSessions regenerates the continuous-session fleet
// comparison (naive vs client-cached vs session+prefetch).
func BenchmarkSessions(b *testing.B) { benchFigure(b, "sessions", 2, "queries") }

// BenchmarkSessionMove measures the continuous-session fast path: a
// position update that stays inside the armed validity region. The
// benchmark asserts the paper's core claim for the server-tracked
// protocol — an in-region move costs zero index node accesses.
func BenchmarkSessionMove(b *testing.B) {
	items, uni := UniformDataset(100_000, 2003)
	for _, layout := range []string{LayoutPointer, LayoutArena} {
		b.Run(layout, func(b *testing.B) {
			db, err := Open(items, uni, &Options{Layout: layout})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			q := Pt(0.42, 0.58)
			s, _, err := db.OpenSession(ctx, q, 4)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			// Wiggle inside the region: every move must be a hit.
			pts := make([]Point, 64)
			for i := range pts {
				pts[i] = Pt(q.X+float64(i%8)*1e-9, q.Y+float64(i/8)*1e-9)
			}
			// The fast path is asserted allocation-free: every function on it
			// carries //lbsq:hotpath (see TestHotpathCoverage).
			var res SessionMove
			if allocs := testing.AllocsPerRun(100, func() {
				if err := s.MoveInto(ctx, pts[0], &res); err != nil || !res.Hit {
					b.Fatalf("in-region move failed: hit=%v err=%v", res.Hit, err)
				}
			}); allocs != 0 {
				b.Fatalf("in-region move allocated %.1f times per op, want 0", allocs)
			}
			var na int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.MoveInto(ctx, pts[i%len(pts)], &res); err != nil {
					b.Fatal(err)
				}
				if !res.Hit {
					b.Fatal("in-region move missed the armed region")
				}
				na += int64(res.Cost.Total())
			}
			if na != 0 {
				b.Fatalf("in-region moves cost %d node accesses, want 0", na)
			}
			b.ReportMetric(float64(na)/float64(b.N), "NA/op")
		})
	}
}

// BenchmarkSessionStrategies compares the NN session strategies on the
// in-region fast path. Both must answer an in-region move with zero
// index node accesses, and both fast paths are asserted allocation-free
// — for insq that is the influential-set Covers check, pure distance
// arithmetic over at most k+slack points (//lbsq:hotpath, see
// TestHotpathCoverage).
func BenchmarkSessionStrategies(b *testing.B) {
	items, uni := UniformDataset(100_000, 2003)
	for _, strategy := range []string{SessionStrategyTPKNN, SessionStrategyINSQ} {
		b.Run(strategy, func(b *testing.B) {
			db, err := Open(items, uni, &Options{SessionStrategy: strategy})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			q := Pt(0.42, 0.58)
			s, _, err := db.OpenSession(ctx, q, 4)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			pts := make([]Point, 64)
			for i := range pts {
				pts[i] = Pt(q.X+float64(i%8)*1e-9, q.Y+float64(i/8)*1e-9)
			}
			var res SessionMove
			if allocs := testing.AllocsPerRun(100, func() {
				if err := s.MoveInto(ctx, pts[0], &res); err != nil || !res.Hit {
					b.Fatalf("in-region move failed: hit=%v err=%v", res.Hit, err)
				}
			}); allocs != 0 {
				b.Fatalf("%s in-region move allocated %.1f times per op, want 0", strategy, allocs)
			}
			var na int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.MoveInto(ctx, pts[i%len(pts)], &res); err != nil {
					b.Fatal(err)
				}
				if !res.Hit {
					b.Fatal("in-region move missed the armed region")
				}
				na += int64(res.Cost.Total())
			}
			if na != 0 {
				b.Fatalf("in-region moves cost %d node accesses, want 0", na)
			}
			b.ReportMetric(float64(na)/float64(b.N), "NA/op")
		})
	}
}

// BenchmarkArenaNN measures the zero-allocation k-NN read path over the
// flat arena layout: best-first search with pooled heap scratch and a
// caller-supplied result slice. The benchmark asserts 0 allocs/op —
// every function on the path carries //lbsq:hotpath.
func BenchmarkArenaNN(b *testing.B) {
	items, uni := UniformDataset(100_000, 2003)
	db, err := Open(items, uni, &Options{Layout: LayoutArena})
	if err != nil {
		b.Fatal(err)
	}
	ix := db.server.Index
	pts := make([]Point, 64)
	for i := range pts {
		pts[i] = Pt(0.1+0.8*float64(i%8)/8, 0.1+0.8*float64(i/8)/8)
	}
	dst := make([]Neighbor, 0, 16)
	if allocs := testing.AllocsPerRun(100, func() {
		dst = nn.KNearestInto(ix, pts[0], 4, dst)
		if len(dst) != 4 {
			b.Fatalf("got %d neighbors, want 4", len(dst))
		}
	}); allocs != 0 {
		b.Fatalf("arena k-NN allocated %.1f times per op, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = nn.KNearestInto(ix, pts[i%len(pts)], 4, dst)
	}
	sinkNeighbors = dst
}

// BenchmarkArenaWindow measures the zero-allocation window read path
// over the flat arena layout: SearchAppend into a reused caller buffer.
// The benchmark asserts 0 allocs/op.
func BenchmarkArenaWindow(b *testing.B) {
	items, uni := UniformDataset(100_000, 2003)
	db, err := Open(items, uni, &Options{Layout: LayoutArena})
	if err != nil {
		b.Fatal(err)
	}
	ix := db.server.Index
	ws := make([]Rect, 16)
	for i := range ws {
		c := Pt(0.2+0.6*float64(i)/16, 0.5)
		ws[i] = R(c.X-0.01, c.Y-0.01, c.X+0.01, c.Y+0.01)
	}
	buf := make([]Item, 0, 256)
	if allocs := testing.AllocsPerRun(100, func() {
		buf = ix.SearchAppend(buf[:0], ws[0])
		if len(buf) == 0 {
			b.Fatal("window query returned no items")
		}
	}); allocs != 0 {
		b.Fatalf("arena window allocated %.1f times per op, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = ix.SearchAppend(buf[:0], ws[i%len(ws)])
	}
	sinkItems = buf
}

// Benchmark sinks keep results live so the compiler cannot elide the
// measured calls.
var (
	sinkNeighbors []Neighbor
	sinkItems     []Item
)

// BenchmarkCacheHitPath measures the validity-cache fast path: the
// cached variant serves a warmed region at zero node accesses, and the
// uncached variant recomputes the same query every time.
func BenchmarkCacheHitPath(b *testing.B) {
	items, uni := UniformDataset(100_000, 2003)
	q := Pt(0.42, 0.58)
	ctx := context.Background()

	b.Run("uncached", func(b *testing.B) {
		db, err := Open(items, uni, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := db.NN(ctx, q, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		db, err := Open(items, uni, &Options{CacheSize: 1024})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := db.NN(ctx, q, 4); err != nil { // warm the cache
			b.Fatal(err)
		}
		// The cache-hit path is asserted allocation-free: every function
		// on it carries //lbsq:hotpath (see TestHotpathCoverage).
		if allocs := testing.AllocsPerRun(100, func() {
			if _, _, err := db.NN(ctx, q, 4); err != nil {
				b.Fatal(err)
			}
		}); allocs != 0 {
			b.Fatalf("cache hit allocated %.1f times per op, want 0", allocs)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, cost, err := db.NN(ctx, q, 4)
			if err != nil {
				b.Fatal(err)
			}
			if cost.Total() != 0 {
				b.Fatalf("cache hit cost %d node accesses, want 0", cost.Total())
			}
			if v == nil || !v.Valid(q) {
				b.Fatal("cache hit returned an invalid region")
			}
		}
	})
}
